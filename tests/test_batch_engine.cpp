// Tests for the batch experiment engine (src/exp/): job identity hashing,
// per-job seed derivation, the sharded job queue, JSONL/CSV sinks and
// round-trips, checkpointed resume, and the engine's determinism guarantee
// (byte-identical JSONL regardless of worker count).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "exp/exp.hpp"
#include "util/rng.hpp"

namespace oracle {
namespace {

core::ExperimentConfig small_config(std::uint64_t seed = 1) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:5x5";
  cfg.strategy = "cwn:radius=4,horizon=1";
  cfg.workload = "fib:9";
  cfg.machine.seed = seed;
  return cfg;
}

/// A fast 3 (topology) x 3 (strategy) x 2 (seed) sweep = 18 jobs.
std::vector<core::ExperimentConfig> small_sweep() {
  return core::SweepBuilder(small_config())
      .topologies({"grid:5x5", "grid:6x6", "dlm:5:5x5"})
      .strategies({"cwn:radius=4,horizon=1", "gm:hwm=2,lwm=1", "random"})
      .seeds({1, 2})
      .build();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "oracle_batch_" + name;
}

std::size_t line_count(const std::string& path) {
  std::ifstream in(path);
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) ++n;
  return n;
}

// ----------------------------------------------------------- seed derive --

TEST(RngDerive, DeriveSeedIsPureAndDeterministic) {
  EXPECT_EQ(Rng::derive_seed(42, 0), Rng::derive_seed(42, 0));
  EXPECT_EQ(Rng::derive_seed(42, 7), Rng::derive_seed(42, 7));
  EXPECT_NE(Rng::derive_seed(42, 0), Rng::derive_seed(42, 1));
  EXPECT_NE(Rng::derive_seed(42, 0), Rng::derive_seed(43, 0));
}

TEST(RngDerive, DerivedStreamsAreIndependent) {
  Rng a(Rng::derive_seed(9, 0)), b(Rng::derive_seed(9, 1));
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngDerive, MemberDeriveDoesNotAdvanceParent) {
  Rng x(77), y(77);
  Rng child = x.derive(3);
  (void)child.next();
  // x must still be in lockstep with the untouched y.
  for (int i = 0; i < 100; ++i) ASSERT_EQ(x.next(), y.next());
  // And deriving the same index twice yields the same stream.
  Rng c1 = y.derive(3), c2 = y.derive(3);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(c1.next(), c2.next());
}

// ------------------------------------------------------------ job hashes --

TEST(JobHash, SensitiveToEveryAxisAndSeed) {
  const auto base = small_config();
  EXPECT_EQ(exp::job_content_hash(base), exp::job_content_hash(base));

  auto topo = base;
  topo.topology = "grid:6x6";
  auto strat = base;
  strat.strategy = "gm";
  auto wl = base;
  wl.workload = "fib:10";
  auto seed = base;
  seed.machine.seed = 2;
  auto cost = base;
  cost.costs.leaf_cost += 1;
  const auto h = exp::job_content_hash(base);
  EXPECT_NE(h, exp::job_content_hash(topo));
  EXPECT_NE(h, exp::job_content_hash(strat));
  EXPECT_NE(h, exp::job_content_hash(wl));
  EXPECT_NE(h, exp::job_content_hash(seed));
  EXPECT_NE(h, exp::job_content_hash(cost));
}

TEST(JobHash, HexRoundTrips) {
  for (std::uint64_t v : {0ULL, 1ULL, 0xdeadbeefcafef00dULL,
                          0xffffffffffffffffULL}) {
    std::uint64_t back = 0;
    ASSERT_TRUE(exp::parse_hash_hex(exp::hash_hex(v), back));
    EXPECT_EQ(back, v);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(exp::parse_hash_hex("xyz", out));
  EXPECT_FALSE(exp::parse_hash_hex("00112233445566", out));  // too short
}

// -------------------------------------------------------------- JobQueue --

TEST(JobQueue, AssignsStableIndicesAndHashes) {
  exp::JobQueue queue(small_sweep());
  ASSERT_EQ(queue.size(), 18u);
  for (std::size_t i = 0; i < queue.size(); ++i) {
    EXPECT_EQ(queue.job(i).index, i);
    EXPECT_EQ(queue.job(i).content_hash,
              exp::job_content_hash(queue.job(i).config));
  }
}

TEST(JobQueue, DeriveSeedsIsReproduciblePerIndex) {
  exp::JobQueue a(small_sweep()), b(small_sweep());
  a.derive_seeds(99);
  b.derive_seeds(99);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.job(i).config.machine.seed, Rng::derive_seed(99, i));
    EXPECT_EQ(a.job(i).content_hash, b.job(i).content_hash);
  }
}

TEST(JobQueue, SkipCompletedPreservesOriginalIndices) {
  exp::JobQueue queue(small_sweep());
  const auto skip_hash = queue.job(4).content_hash;
  EXPECT_EQ(queue.skip_completed({skip_hash}), 1u);
  ASSERT_EQ(queue.size(), 17u);
  // Index 4 is gone; every surviving job keeps its sweep index.
  for (std::size_t pos = 0; pos < queue.size(); ++pos)
    EXPECT_EQ(queue.job(pos).index, pos < 4 ? pos : pos + 1);
}

TEST(JobQueue, ConcurrentClaimsPartitionTheQueue) {
  exp::JobQueue queue(small_sweep());
  std::vector<char> seen(queue.size(), 0);
  std::mutex m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (true) {
        const auto shard = queue.claim(3);
        if (shard.empty()) return;
        std::lock_guard<std::mutex> lock(m);
        for (auto i = shard.begin; i < shard.end; ++i) {
          EXPECT_EQ(seen[i], 0) << "position claimed twice";
          seen[i] = 1;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const char s : seen) EXPECT_EQ(s, 1);
}

// ------------------------------------------------------- JSONL round trip --

TEST(Jsonl, RecordRoundTrips) {
  exp::ExperimentJob job;
  job.index = 7;
  job.config = small_config();
  job.content_hash = exp::job_content_hash(job.config);
  const auto result = core::run_experiment(job.config);

  const auto rec = exp::parse_jsonl_record(exp::jsonl_record(job, result));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->job_index, 7u);
  EXPECT_EQ(rec->content_hash, job.content_hash);
  const auto& r = rec->result;
  EXPECT_EQ(r.topology, result.topology);
  EXPECT_EQ(r.strategy, result.strategy);
  EXPECT_EQ(r.workload, result.workload);
  EXPECT_EQ(r.num_pes, result.num_pes);
  EXPECT_EQ(r.seed, result.seed);
  EXPECT_EQ(r.completion_time, result.completion_time);
  EXPECT_EQ(r.goals_executed, result.goals_executed);
  EXPECT_EQ(r.total_work, result.total_work);
  EXPECT_EQ(r.critical_path, result.critical_path);
  EXPECT_DOUBLE_EQ(r.avg_utilization, result.avg_utilization);
  EXPECT_DOUBLE_EQ(r.speedup, result.speedup);
  EXPECT_DOUBLE_EQ(r.utilization_cv, result.utilization_cv);
  EXPECT_DOUBLE_EQ(r.avg_goal_distance, result.avg_goal_distance);
  EXPECT_EQ(r.goal_transmissions, result.goal_transmissions);
  EXPECT_EQ(r.response_transmissions, result.response_transmissions);
  EXPECT_EQ(r.control_transmissions, result.control_transmissions);
  EXPECT_DOUBLE_EQ(r.avg_channel_utilization, result.avg_channel_utilization);
  EXPECT_DOUBLE_EQ(r.max_channel_utilization, result.max_channel_utilization);
  EXPECT_EQ(r.events_executed, result.events_executed);
}

TEST(Jsonl, RejectsTruncatedAndMalformedLines) {
  exp::ExperimentJob job;
  job.config = small_config();
  job.content_hash = exp::job_content_hash(job.config);
  const auto line = exp::jsonl_record(job, core::run_experiment(job.config));

  EXPECT_FALSE(exp::parse_jsonl_record("").has_value());
  EXPECT_FALSE(exp::parse_jsonl_record("not json").has_value());
  EXPECT_FALSE(exp::parse_jsonl_record("{}").has_value());
  // A record cut off mid-write (the kill -9 case).
  EXPECT_FALSE(
      exp::parse_jsonl_record(line.substr(0, line.size() / 2)).has_value());
}

TEST(Jsonl, LoadCompletedHashesSkipsCorruptLines) {
  exp::ExperimentJob job;
  job.config = small_config();
  job.content_hash = exp::job_content_hash(job.config);
  const auto line = exp::jsonl_record(job, core::run_experiment(job.config));

  const auto path = temp_path("corrupt.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << line << "\ngarbage\n" << line.substr(0, 30);  // truncated tail
  }
  const auto done = exp::load_completed_hashes(path);
  EXPECT_EQ(done.size(), 1u);
  EXPECT_TRUE(done.contains(job.content_hash));
  EXPECT_TRUE(exp::load_completed_hashes(temp_path("missing.jsonl")).empty());
  std::remove(path.c_str());
}

// ------------------------------------------------------------- CSV sink --

TEST(CsvSink, EmitsHeaderOnceAndOneRowPerRun) {
  exp::ExperimentJob job;
  job.config = small_config();
  job.content_hash = exp::job_content_hash(job.config);
  const auto result = core::run_experiment(job.config);

  std::ostringstream os;
  exp::CsvSink sink(os);
  sink.write(job, result);
  job.index = 1;
  sink.write(job, result);

  std::istringstream in(os.str());
  std::string header, row1, row2, extra;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row1));
  ASSERT_TRUE(std::getline(in, row2));
  EXPECT_FALSE(std::getline(in, extra));
  EXPECT_EQ(header, exp::CsvSink::header());
  EXPECT_TRUE(header.starts_with("job,hash,topology,"));
  EXPECT_TRUE(row1.starts_with("0," + exp::hash_hex(job.content_hash)));
  EXPECT_TRUE(row2.starts_with("1," + exp::hash_hex(job.content_hash)));
}

// ------------------------------------------- engine determinism & resume --

TEST(BatchEngine, JsonlByteIdenticalAcrossWorkerCounts) {
  const auto configs = small_sweep();
  std::ostringstream one, eight;

  exp::BatchOptions opt;
  opt.collect = false;
  opt.jsonl_stream = &one;
  opt.exec.workers = 1;
  exp::run_batch(configs, opt);

  opt.jsonl_stream = &eight;
  opt.exec.workers = 8;
  opt.exec.shard_size = 1;  // maximize interleaving
  exp::run_batch(configs, opt);

  EXPECT_FALSE(one.str().empty());
  EXPECT_EQ(one.str(), eight.str());
}

TEST(BatchEngine, CollectedResultsMatchSerialRuns) {
  const auto configs = small_sweep();
  exp::BatchOptions opt;
  opt.exec.workers = 4;
  const auto outcome = exp::run_batch(configs, opt);
  ASSERT_TRUE(outcome.report.ok());
  ASSERT_EQ(outcome.results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto serial = core::run_experiment(configs[i]);
    EXPECT_EQ(outcome.results[i].completion_time, serial.completion_time);
    EXPECT_EQ(outcome.results[i].goals_executed, serial.goals_executed);
    EXPECT_EQ(outcome.results[i].seed, serial.seed);
  }
}

TEST(BatchEngine, ResumeSkipsCompletedJobsAndCompletesTheSweep) {
  const auto configs = small_sweep();
  const auto store = temp_path("resume.jsonl");
  const auto ckpt = exp::Checkpoint::default_path(store);

  // "Interrupted" run: only the first 5 jobs ever executed.
  {
    const std::vector<core::ExperimentConfig> partial(configs.begin(),
                                                      configs.begin() + 5);
    exp::BatchOptions opt;
    opt.jsonl_path = store;
    opt.collect = false;
    const auto outcome = exp::run_batch(partial, opt);
    ASSERT_TRUE(outcome.report.ok());
    ASSERT_EQ(line_count(store), 5u);
    ASSERT_EQ(line_count(ckpt), 5u);
  }

  // Resume over the full sweep: 5 skipped, 13 executed, store complete.
  exp::BatchOptions opt;
  opt.jsonl_path = store;
  opt.resume = true;
  opt.exec.workers = 4;
  const auto outcome = exp::run_batch(configs, opt);
  EXPECT_TRUE(outcome.report.ok());
  EXPECT_EQ(outcome.report.total_jobs, 18u);
  EXPECT_EQ(outcome.report.skipped, 5u);
  EXPECT_EQ(outcome.report.executed, 13u);
  EXPECT_EQ(line_count(store), 18u);

  // Every job of the sweep appears exactly once in the final store.
  std::unordered_set<std::uint64_t> hashes;
  std::ifstream in(store);
  std::string line;
  while (std::getline(in, line)) {
    const auto rec = exp::parse_jsonl_record(line);
    ASSERT_TRUE(rec.has_value());
    EXPECT_TRUE(hashes.insert(rec->content_hash).second) << "duplicate record";
  }
  for (const auto& cfg : configs)
    EXPECT_TRUE(hashes.contains(exp::job_content_hash(cfg)));

  // A second resume is a no-op: everything cached.
  const auto again = exp::run_batch(configs, opt);
  EXPECT_EQ(again.report.skipped, 18u);
  EXPECT_EQ(again.report.executed, 0u);
  EXPECT_EQ(line_count(store), 18u);

  std::remove(store.c_str());
  std::remove(ckpt.c_str());
}

TEST(BatchEngine, ResumeAfterMidWriteKillDoesNotGlueRecords) {
  const auto configs = small_sweep();
  const auto store = temp_path("midwrite.jsonl");
  const auto ckpt = exp::Checkpoint::default_path(store);
  {
    const std::vector<core::ExperimentConfig> partial(configs.begin(),
                                                      configs.begin() + 3);
    exp::BatchOptions opt;
    opt.jsonl_path = store;
    opt.collect = false;
    ASSERT_TRUE(exp::run_batch(partial, opt).report.ok());
  }
  // Simulate kill -9 mid-write: the store's (and checkpoint's) last line
  // is cut off with no trailing newline.
  auto truncate_tail = [](const std::string& path, std::size_t drop) {
    std::ifstream in(path, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    content.resize(content.size() - drop);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  };
  truncate_tail(store, 40);
  truncate_tail(ckpt, 5);

  exp::BatchOptions opt;
  opt.jsonl_path = store;
  opt.resume = true;
  const auto outcome = exp::run_batch(configs, opt);
  EXPECT_TRUE(outcome.report.ok());
  EXPECT_EQ(outcome.report.skipped, 2u);  // the cut-off third job re-runs

  // Every line except the orphaned partial one parses; all 18 jobs have a
  // well-formed record (nothing glued onto the partial tail).
  std::size_t parsed = 0, unparsed = 0;
  std::ifstream in(store);
  std::string line;
  while (std::getline(in, line)) {
    if (exp::parse_jsonl_record(line)) {
      ++parsed;
    } else {
      ++unparsed;
    }
  }
  EXPECT_EQ(parsed, 18u);
  EXPECT_EQ(unparsed, 1u);
  EXPECT_EQ(exp::load_completed_hashes(store).size(), 18u);

  std::remove(store.c_str());
  std::remove(ckpt.c_str());
}

TEST(BatchEngine, ResumeRecoversFromCheckpointAloneAndStoreAlone) {
  const auto configs = small_sweep();
  const auto store = temp_path("recover.jsonl");
  const auto ckpt = exp::Checkpoint::default_path(store);
  {
    const std::vector<core::ExperimentConfig> partial(configs.begin(),
                                                      configs.begin() + 4);
    exp::BatchOptions opt;
    opt.jsonl_path = store;
    opt.collect = false;
    ASSERT_TRUE(exp::run_batch(partial, opt).report.ok());
  }

  // Checkpoint missing (deleted): the JSONL store alone still resumes.
  std::remove(ckpt.c_str());
  exp::BatchOptions opt;
  opt.jsonl_path = store;
  opt.resume = true;
  const auto outcome = exp::run_batch(configs, opt);
  EXPECT_EQ(outcome.report.skipped, 4u);
  EXPECT_EQ(line_count(store), 18u);

  std::remove(store.c_str());
  std::remove(ckpt.c_str());
}

TEST(BatchEngine, CsvOnlyResumeSkipsCompletedJobsWithoutDuplicateRows) {
  const auto configs = small_sweep();
  const auto csv = temp_path("csvonly.csv");
  const auto ckpt = exp::Checkpoint::default_path(csv);
  {
    const std::vector<core::ExperimentConfig> partial(configs.begin(),
                                                      configs.begin() + 6);
    exp::BatchOptions opt;
    opt.csv_path = csv;
    opt.collect = false;
    ASSERT_TRUE(exp::run_batch(partial, opt).report.ok());
  }
  exp::BatchOptions opt;
  opt.csv_path = csv;
  opt.resume = true;
  const auto outcome = exp::run_batch(configs, opt);
  EXPECT_TRUE(outcome.report.ok());
  EXPECT_EQ(outcome.report.skipped, 6u);
  EXPECT_EQ(outcome.report.executed, 12u);
  EXPECT_EQ(line_count(csv), 19u);  // header + 18 rows, no duplicates

  // Even with the checkpoint gone, the CSV rows alone carry the hashes.
  std::remove(ckpt.c_str());
  const auto again = exp::run_batch(configs, opt);
  EXPECT_EQ(again.report.skipped, 18u);
  EXPECT_EQ(line_count(csv), 19u);

  std::remove(csv.c_str());
  std::remove(ckpt.c_str());
}

TEST(BatchEngine, FailedJobsAreReportedAndRetriedOnResume) {
  auto configs = small_sweep();
  configs[3].topology = "nonsense:9q";  // parses at run time → job fails
  const auto store = temp_path("failures.jsonl");

  exp::BatchOptions opt;
  opt.jsonl_path = store;
  opt.collect = true;
  const auto outcome = exp::run_batch(configs, opt);
  EXPECT_FALSE(outcome.report.ok());
  EXPECT_EQ(outcome.report.failed, 1u);
  ASSERT_EQ(outcome.report.errors.size(), 1u);
  EXPECT_NE(outcome.report.errors[0].find("job 3"), std::string::npos);
  EXPECT_EQ(outcome.results.size(), 17u);  // failed job has no record
  EXPECT_EQ(line_count(store), 17u);

  // The failed job was not checkpointed: a resume retries exactly it.
  opt.resume = true;
  const auto retry = exp::run_batch(configs, opt);
  EXPECT_EQ(retry.report.skipped, 17u);
  EXPECT_EQ(retry.report.failed, 1u);

  std::remove(store.c_str());
  std::remove(exp::Checkpoint::default_path(store).c_str());
}

// -------------------------------------------------- checkpoint durability --

TEST(Checkpoint, EveryRecordIsDurableImmediately) {
  // Crash-replay: after each record() returns, a *separate reader* (stand-in
  // for the resume scan of a process that took over after kill -9) must
  // already see the hash on disk — no buffering until close/destruction.
  const auto path = temp_path("ckpt_durable.ckpt");
  std::remove(path.c_str());
  exp::Checkpoint ckpt(path);
  std::vector<std::uint64_t> hashes = {0x1111, 0x2222, 0xdeadbeef,
                                       0xffffffffffffffffULL};
  for (std::size_t i = 0; i < hashes.size(); ++i) {
    ckpt.record(hashes[i]);
    // The writing Checkpoint stays open — read behind its back.
    exp::Checkpoint reader(path);
    EXPECT_EQ(reader.load(), i + 1);
    for (std::size_t j = 0; j <= i; ++j)
      EXPECT_TRUE(reader.contains(hashes[j]));
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, ReplayAfterMidWriteKillTerminatesPartialLine) {
  const auto path = temp_path("ckpt_replay.ckpt");
  std::remove(path.c_str());
  {
    exp::Checkpoint ckpt(path);
    ckpt.record(0xaaaa);
    ckpt.record(0xbbbb);
  }
  // Simulate kill -9 mid-append: a partial hash with no newline.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << "00000000000";
  }
  // The next run loads the intact prefix, terminates the partial line, and
  // keeps appending; a final replay sees old + new but never the fragment.
  {
    exp::Checkpoint ckpt(path);
    EXPECT_EQ(ckpt.load(), 2u);
    ckpt.record(0xcccc);
  }
  exp::Checkpoint reader(path);
  EXPECT_EQ(reader.load(), 3u);
  EXPECT_TRUE(reader.contains(0xaaaa));
  EXPECT_TRUE(reader.contains(0xbbbb));
  EXPECT_TRUE(reader.contains(0xcccc));
  std::remove(path.c_str());
}

// --------------------------------------- lease workers & golden identity --

TEST(BatchEngine, StopBeforeCancelsTheTailAndResumeFinishesIt) {
  const auto configs = small_sweep();
  const auto store = temp_path("cancel.jsonl");
  const auto serial = temp_path("cancel_serial.jsonl");
  for (const auto& p : {store, serial}) {
    std::remove(p.c_str());
    std::remove(exp::Checkpoint::default_path(p).c_str());
  }

  exp::BatchOptions sopt;
  sopt.jsonl_path = serial;
  sopt.collect = false;
  ASSERT_TRUE(exp::run_batch(configs, sopt).report.ok());

  // A lease shrink mid-run: stop_before vetoes job 5 and everything after.
  exp::BatchOptions opt;
  opt.jsonl_path = store;
  opt.collect = false;
  opt.exec.workers = 2;
  opt.exec.stop_before = [](const exp::ExperimentJob& job) {
    return job.index >= 5;
  };
  const auto cancelled = exp::run_batch(configs, opt);
  EXPECT_TRUE(cancelled.report.ok());  // cancellation is not a failure
  EXPECT_EQ(cancelled.report.executed, 5u);
  EXPECT_EQ(cancelled.report.cancelled, 13u);
  EXPECT_EQ(line_count(store), 5u);  // clean prefix, no gap

  // Resuming without the veto completes the sweep; the appended store is
  // byte-identical to the serial run (ordered commit from a clean prefix).
  opt.exec.stop_before = nullptr;
  opt.resume = true;
  const auto finished = exp::run_batch(configs, opt);
  EXPECT_TRUE(finished.report.ok());
  EXPECT_EQ(finished.report.skipped, 5u);
  EXPECT_EQ(finished.report.cancelled, 0u);
  std::ifstream a(serial, std::ios::binary), b(store, std::ios::binary);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());

  for (const auto& p : {store, serial}) {
    std::remove(p.c_str());
    std::remove(exp::Checkpoint::default_path(p).c_str());
  }
}

TEST(BatchEngine, GoldenSerialStaticAndAdversarialStealRunsAreByteIdentical) {
  // The tentpole guarantee, three ways: (1) one serial run, (2) the static
  // hash-modulo shard layout, (3) a work-stealing schedule with
  // *adversarial* leases — overlapping ranges plus a duplicated store
  // standing in for a steal race that ran jobs twice. All three merged
  // stores must be byte-identical.
  const auto configs = small_sweep();
  const auto serial = temp_path("golden_serial.jsonl");
  const auto statik = temp_path("golden_static.jsonl");
  const auto steal = temp_path("golden_steal.jsonl");
  auto cleanup = [&] {
    for (const auto& p : {serial, statik, steal}) {
      std::remove(p.c_str());
      std::remove(exp::Checkpoint::default_path(p).c_str());
    }
    for (std::size_t i = 0; i < 3; ++i) {
      const auto s = exp::shard_store_path(statik, i, 3);
      std::remove(s.c_str());
      std::remove(exp::Checkpoint::default_path(s).c_str());
    }
    for (std::size_t k = 0; k < 4; ++k) {
      for (const auto& f : {exp::worker_store_path(steal, k, 4),
                            exp::Checkpoint::default_path(
                                exp::worker_store_path(steal, k, 4)),
                            exp::worker_lease_path(steal, k, 4),
                            exp::worker_heartbeat_path(steal, k, 4)})
        std::remove(f.c_str());
    }
  };
  cleanup();

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };

  // (1) serial.
  exp::BatchOptions sopt;
  sopt.jsonl_path = serial;
  sopt.collect = false;
  ASSERT_TRUE(exp::run_batch(configs, sopt).report.ok());

  // (2) static shards.
  for (std::size_t i = 0; i < 3; ++i) {
    exp::BatchOptions opt;
    opt.jsonl_path = exp::shard_store_path(statik, i, 3);
    opt.shard_index = i;
    opt.shard_count = 3;
    opt.collect = false;
    ASSERT_TRUE(exp::run_batch(configs, opt).report.ok());
  }
  exp::ShardMerger static_merger;
  for (std::size_t i = 0; i < 3; ++i)
    static_merger.add_store(exp::shard_store_path(statik, i, 3));
  ASSERT_EQ(static_merger.merge_to(statik).records, configs.size());

  // (3) adversarial steal schedule: leases overlap (jobs 8..9 and 12..13
  // sit in two leases each) — exactly what a shrink race produces.
  const std::vector<std::pair<std::size_t, std::size_t>> leases = {
      {0, 10}, {8, 14}, {12, 18}};
  for (std::size_t k = 0; k < leases.size(); ++k) {
    exp::Lease lease;
    lease.begin = leases[k].first;
    lease.end = leases[k].second;
    exp::write_lease_file(exp::worker_lease_path(steal, k, 4), lease);
    exp::LeaseWorkerOptions wopt;
    wopt.canonical_out = steal;
    wopt.slot = k;
    wopt.slot_count = 4;
    ASSERT_TRUE(exp::run_lease_worker(configs, wopt).ok());
  }
  // Slot 3's store is a byte copy of slot 0's: a steal race that re-ran an
  // entire range on a second worker.
  {
    std::ofstream dup(exp::worker_store_path(steal, 3, 4),
                      std::ios::binary | std::ios::trunc);
    dup << slurp(exp::worker_store_path(steal, 0, 4));
  }
  exp::ShardMerger steal_merger;
  for (std::size_t k = 0; k < 4; ++k)
    steal_merger.add_store(exp::worker_store_path(steal, k, 4));
  const auto merge = steal_merger.merge_to(steal);
  EXPECT_EQ(merge.records, configs.size());
  EXPECT_GE(merge.duplicates_dropped, 10u);  // the copied store, at least

  const auto golden = slurp(serial);
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(golden, slurp(statik));
  EXPECT_EQ(golden, slurp(steal));
  EXPECT_EQ(slurp(exp::Checkpoint::default_path(serial)),
            slurp(exp::Checkpoint::default_path(steal)));
  cleanup();
}

TEST(BatchEngine, SweepBuilderRunBatchEndToEnd) {
  exp::BatchOptions opt;
  opt.exec.workers = 2;
  const auto outcome = core::SweepBuilder(small_config())
                           .topologies({"grid:5x5", "grid:6x6"})
                           .strategies({"random", "roundrobin"})
                           .run_batch(opt);
  EXPECT_TRUE(outcome.report.ok());
  EXPECT_EQ(outcome.report.executed, 4u);
  EXPECT_EQ(outcome.results.size(), 4u);
}

}  // namespace
}  // namespace oracle
