// Tests of the CWN strategy: the radius/horizon mechanics, neighbor load
// tracking, and the paper-documented behaviours (every goal contracted out,
// goals never travel beyond the radius, fast spread).

#include <gtest/gtest.h>

#include "lb/cwn.hpp"
#include "lb/load_info.hpp"
#include "machine/machine.hpp"
#include "topo/factory.hpp"
#include "topo/grid.hpp"
#include "util/error.hpp"
#include "workload/dc.hpp"
#include "workload/fib.hpp"

namespace oracle::lb {
namespace {

workload::CostModel costs() { return workload::CostModel{100, 40, 40}; }

machine::MachineConfig cfg(std::uint64_t seed = 1) {
  machine::MachineConfig c;
  c.seed = seed;
  return c;
}

stats::RunResult run_cwn(const topo::Topology& topo,
                         const workload::Workload& wl, CwnParams params,
                         std::uint64_t seed = 1) {
  Cwn strategy(params);
  machine::Machine m(topo, wl, strategy, cfg(seed));
  return m.run();
}

TEST(Cwn, ParamValidation) {
  CwnParams p;
  p.radius = 0;
  EXPECT_THROW(Cwn{p}, ConfigError);
  p = CwnParams{};
  p.horizon = p.radius + 1;
  EXPECT_THROW(Cwn{p}, ConfigError);
}

TEST(Cwn, NameIncludesParams) {
  CwnParams p;
  p.radius = 7;
  p.horizon = 3;
  EXPECT_EQ(Cwn(p).name(), "cwn(r=7,h=3)");
}

TEST(Cwn, EveryGoalContractedOut) {
  // "this scheme sends every subgoal out to another PE as soon as it is
  // created": no goal (bar the root handled at hops >= 1 too) ends with
  // hops == 0.
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(10, costs());
  const auto r = run_cwn(grid, wl, CwnParams{});
  EXPECT_EQ(r.goal_hops.count(0), 0u);
  EXPECT_EQ(r.goal_hops.total(), wl.summarize().total_goals);
}

TEST(Cwn, NoGoalExceedsRadius) {
  const topo::Grid2D grid(8, 8, false);
  const workload::FibWorkload wl(12, costs());
  for (std::uint32_t radius : {1u, 3u, 6u}) {
    CwnParams p;
    p.radius = radius;
    p.horizon = std::min(p.horizon, radius);
    const auto r = run_cwn(grid, wl, p);
    EXPECT_EQ(r.goal_hops.buckets() - 1, radius) << "radius " << radius;
    for (std::size_t h = radius + 1; h < r.goal_hops.buckets(); ++h)
      EXPECT_EQ(r.goal_hops.count(h), 0u);
  }
}

TEST(Cwn, MinimumDistanceIsHorizonOrRadius) {
  const topo::Grid2D grid(8, 8, false);
  const workload::FibWorkload wl(11, costs());
  CwnParams p;
  p.radius = 6;
  p.horizon = 3;
  const auto r = run_cwn(grid, wl, p);
  for (std::size_t h = 0; h < 3; ++h)
    EXPECT_EQ(r.goal_hops.count(h), 0u) << "hops " << h;
  EXPECT_GT(r.goal_hops.count(6) + r.goal_hops.count(3) +
                r.goal_hops.count(4) + r.goal_hops.count(5),
            0u);
}

TEST(Cwn, RadiusOneDegeneratesToNeighborPush) {
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(9, costs());
  CwnParams p;
  p.radius = 1;
  p.horizon = 1;
  const auto r = run_cwn(grid, wl, p);
  EXPECT_EQ(r.goal_hops.count(1), wl.summarize().total_goals);
  EXPECT_DOUBLE_EQ(r.avg_goal_distance, 1.0);
}

TEST(Cwn, DeterministicForSeed) {
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(11, costs());
  const auto a = run_cwn(grid, wl, CwnParams{}, 42);
  const auto b = run_cwn(grid, wl, CwnParams{}, 42);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.goal_transmissions, b.goal_transmissions);
  EXPECT_EQ(a.goal_hops.to_string(), b.goal_hops.to_string());
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(Cwn, DifferentSeedsUsuallyDiffer) {
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(11, costs());
  const auto a = run_cwn(grid, wl, CwnParams{}, 1);
  const auto b = run_cwn(grid, wl, CwnParams{}, 2);
  // Tie-breaking differs; the exact message pattern should too.
  EXPECT_NE(a.goal_hops.to_string(), b.goal_hops.to_string());
}

TEST(Cwn, SpreadsWorkAcrossPes) {
  // Fast "rise-time" is CWN's signature; after a medium run on a 5x5 grid
  // every PE should have executed something.
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(13, costs());
  Cwn strategy{CwnParams{}};
  machine::Machine m(grid, wl, strategy, cfg());
  const auto r = m.run();
  int touched = 0;
  for (double u : r.pe_utilization)
    if (u > 0.0) ++touched;
  EXPECT_EQ(touched, 25);
  EXPECT_GT(r.avg_utilization, 0.4);
}

TEST(Cwn, BroadcastDisabledStillWorksViaPiggyback) {
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(10, costs());
  CwnParams p;
  p.broadcast_interval = 0;  // piggy-backing only
  const auto r = run_cwn(grid, wl, p);
  EXPECT_EQ(r.goals_executed, wl.summarize().total_goals);
  // No periodic broadcasts: control traffic is zero.
  EXPECT_EQ(r.control_transmissions, 0u);
}

TEST(Cwn, ControlTrafficScalesWithInterval) {
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(10, costs());
  CwnParams frequent, rare;
  frequent.broadcast_interval = 10;
  rare.broadcast_interval = 100;
  const auto rf = run_cwn(grid, wl, frequent);
  const auto rr = run_cwn(grid, wl, rare);
  EXPECT_GT(rf.control_transmissions, rr.control_transmissions);
}

// --------------------------------------------------------------------------
// NeighborLoadTable
// --------------------------------------------------------------------------

TEST(NeighborLoadTable, InitialEstimatesZero) {
  const topo::Grid2D grid(3, 3, false);
  NeighborLoadTable t;
  t.init(grid);
  EXPECT_EQ(t.min_load(4), 0);
  EXPECT_EQ(t.estimate(4, 1), 0);
  EXPECT_EQ(t.degree(4), 4u);
}

TEST(NeighborLoadTable, UpdateAndMin) {
  const topo::Grid2D grid(3, 3, false);
  NeighborLoadTable t;
  t.init(grid);
  t.update(4, 1, 5);
  t.update(4, 3, 2);
  t.update(4, 5, 7);
  t.update(4, 7, 2);
  EXPECT_EQ(t.estimate(4, 1), 5);
  EXPECT_EQ(t.min_load(4), 2);  // all four neighbors (1,3,5,7) updated
}

TEST(NeighborLoadTable, MinAfterAllUpdated) {
  const topo::Grid2D grid(3, 3, false);
  NeighborLoadTable t;
  t.init(grid);
  for (topo::NodeId nb : grid.neighbors(4)) t.update(4, nb, 9);
  t.update(4, 1, 3);
  EXPECT_EQ(t.min_load(4), 3);
  Rng rng(1);
  EXPECT_EQ(t.least_loaded(4, rng), 1u);
}

TEST(NeighborLoadTable, LeastLoadedBreaksTiesUniformly) {
  const topo::Grid2D grid(3, 3, false);
  NeighborLoadTable t;
  t.init(grid);  // all zero: 4-way tie at node 4
  Rng rng(123);
  int counts[9] = {};
  for (int i = 0; i < 4000; ++i) ++counts[t.least_loaded(4, rng)];
  for (topo::NodeId nb : grid.neighbors(4))
    EXPECT_NEAR(counts[nb], 1000, 150);
}

TEST(NeighborLoadTable, IgnoresNonNeighborUpdates) {
  const topo::Grid2D grid(3, 3, false);
  NeighborLoadTable t;
  t.init(grid);
  t.update(4, 8, 99);  // 8 is not adjacent to 4
  EXPECT_EQ(t.min_load(4), 0);
}

TEST(NeighborLoadTable, CornerDegree) {
  const topo::Grid2D grid(3, 3, false);
  NeighborLoadTable t;
  t.init(grid);
  EXPECT_EQ(t.degree(0), 2u);
}

}  // namespace
}  // namespace oracle::lb
