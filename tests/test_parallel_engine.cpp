// Tests for the large-machine engine work: scheduler batching and the
// wheel/heap boundary, PE partitioning, topology lookahead, analytic
// routing at scale, and the conservative parallel engine's determinism
// guarantees (trajectory depends on the partition count, never on the
// worker-thread count).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "core/simulator.hpp"
#include "machine/partition.hpp"
#include "sim/scheduler.hpp"
#include "topo/graph_algos.hpp"
#include "topo/grid.hpp"
#include "topo/hypercube.hpp"
#include "topo/tree.hpp"
#include "util/error.hpp"

namespace oracle {
namespace {

// ---------------------------------------------------------------------------
// Scheduler: wheel/heap boundary and batched dispatch.
// ---------------------------------------------------------------------------

TEST(SchedulerBoundary, LastWheelTickStaysOnWheel) {
  // Regression for the horizon off-by-one: with ring R and base b, time
  // b + R - 1 is the last wheel tick; b + R must go to the overflow heap.
  sim::Scheduler s(64);
  ASSERT_EQ(s.ring_ticks(), 64u);
  std::vector<int> order;
  s.schedule_at(0, [&] { order.push_back(0); });  // pins base at 0
  s.schedule_at(63, [&] { order.push_back(63); });
  s.schedule_at(64, [&] { order.push_back(64); });
  const auto c = s.counters();
  EXPECT_EQ(c.wheel_scheduled, 2u);
  EXPECT_EQ(c.heap_scheduled, 1u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 63, 64}));
  EXPECT_EQ(s.counters().executed, 3u);
}

TEST(SchedulerBoundary, EmptyEngineSlidesInsteadOfHeaping) {
  // A lone far-future timer (sampler / steal-backoff pattern) must slide
  // the wheel base rather than park in the heap.
  sim::Scheduler s(64);
  bool fired = false;
  s.schedule_at(100000, [&] { fired = true; });
  const auto c = s.counters();
  EXPECT_EQ(c.base_slides, 1u);
  EXPECT_EQ(c.wheel_scheduled, 1u);
  EXPECT_EQ(c.heap_scheduled, 0u);
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), 100000);
}

TEST(SchedulerBoundary, StragglerBehindSlidBaseDispatchesFirst) {
  // After an empty-engine slide, an event scheduled *behind* the new base
  // takes the heap and must still dispatch in time order.
  sim::Scheduler s(64);
  std::vector<int> order;
  s.schedule_at(5000, [&] { order.push_back(2); });  // slides base to 5000
  s.schedule_at(10, [&] { order.push_back(1); });    // behind the slid base
  EXPECT_EQ(s.counters().heap_scheduled, 1u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerBoundary, HeapMigrationPreservesTotalOrder) {
  // Events beyond the horizon must migrate into the wheel as the base
  // advances, before any later (higher-seq) same-time event lands there.
  sim::Scheduler s(64);
  std::vector<int> order;
  s.schedule_at(1, [&] {
    // Scheduled mid-run at an already-migrated tick: same time as the heap
    // event below, but a higher seq — must run after it.
    s.schedule_at(70, [&] { order.push_back(4); });
    order.push_back(1);
  });
  s.schedule_at(70, [&] { order.push_back(3); });  // heap at schedule time
  s.schedule_at(2, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SchedulerBoundary, BatchedRunMatchesStepDispatchOrder) {
  // The batched run() drains each tick's bucket in a tight loop; it must
  // produce exactly the (time, seq) order that single-stepping does, on a
  // soup that exercises wheel, heap, slides, and mid-run scheduling.
  std::mt19937 rng(12345);
  std::uniform_int_distribution<sim::SimTime> when(0, 5000);
  std::uniform_int_distribution<int> extra(0, 9);
  struct Planned {
    sim::SimTime t;
    int id;
    sim::Duration follow;  // follow-up delay scheduled from the callback
  };
  std::vector<Planned> plan;
  for (int i = 0; i < 400; ++i) {
    const int e = extra(rng);
    plan.push_back({when(rng), i, e < 3 ? sim::Duration(e * 50) : -1});
  }

  auto drive = [&plan](bool batched) {
    sim::Scheduler s(128);  // small ring: most far events hit the heap
    std::vector<int> order;
    for (const Planned& p : plan) {
      s.schedule_at(p.t, [&s, &order, p] {
        order.push_back(p.id);
        if (p.follow >= 0)
          s.schedule_after(p.follow, [&order, p] { order.push_back(-p.id); });
      });
    }
    if (batched) {
      s.run();
    } else {
      while (s.step()) {
      }
    }
    return order;
  };

  EXPECT_EQ(drive(true), drive(false));
}

TEST(SchedulerBoundary, RunUntilIsInclusive) {
  // The parallel engine's workers run to window_end - 1 because `until` is
  // inclusive; this pins that contract.
  sim::Scheduler s;
  std::vector<int> order;
  s.schedule_at(5, [&] { order.push_back(5); });
  s.schedule_at(10, [&] { order.push_back(10); });
  s.schedule_at(11, [&] { order.push_back(11); });
  s.run(10);
  EXPECT_EQ(order, (std::vector<int>{5, 10}));
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(order.back(), 11);
}

// ---------------------------------------------------------------------------
// Partition plans.
// ---------------------------------------------------------------------------

TEST(PartitionPlan, BlocksAreContiguousAndNearEqual) {
  for (std::uint32_t n : {1u, 5u, 64u, 1000u, 4097u}) {
    for (std::uint32_t k : {1u, 2u, 3u, 7u, 16u}) {
      const machine::PartitionPlan plan = machine::make_partition_plan(n, k);
      EXPECT_LE(plan.num_shards, n);
      EXPECT_GE(plan.num_shards, 1u);
      std::uint32_t total = 0, min_size = n, max_size = 0;
      for (std::uint32_t s = 0; s < plan.num_shards; ++s) {
        const topo::NodeId b = plan.begin(s), e = plan.end(s);
        ASSERT_LE(b, e);
        const std::uint32_t size = e - b;
        total += size;
        min_size = std::min(min_size, size);
        max_size = std::max(max_size, size);
        for (topo::NodeId pe = b; pe < e; ++pe)
          ASSERT_EQ(plan.shard_of(pe), s) << "n=" << n << " k=" << k;
      }
      EXPECT_EQ(total, n);
      EXPECT_LE(max_size - min_size, 1u) << "n=" << n << " k=" << k;
      EXPECT_EQ(plan.begin(0), 0u);
      EXPECT_EQ(plan.end(plan.num_shards - 1), n);
    }
  }
}

TEST(PartitionPlan, AutoShardCountScalesWithMachineSize) {
  EXPECT_EQ(machine::auto_num_shards(100), 1u);   // small: sharding loses
  EXPECT_EQ(machine::auto_num_shards(8192), 2u);  // one shard per ~4096 PEs
  EXPECT_EQ(machine::auto_num_shards(1'000'000), 16u);  // capped
  const machine::PartitionPlan plan = machine::make_partition_plan(64, 0);
  EXPECT_EQ(plan.num_shards, 1u);
}

// ---------------------------------------------------------------------------
// Lookahead.
// ---------------------------------------------------------------------------

machine::MachineConfig lookahead_cfg() {
  machine::MachineConfig cfg;
  cfg.hop_latency = 4;
  cfg.ctrl_latency = 2;
  return cfg;
}

TEST(Lookahead, GridHorizonIsMinCrossLinkLatency) {
  const topo::Grid2D grid(8, 8, false);
  const auto plan = machine::make_partition_plan(grid.num_nodes(), 4);
  const machine::Lookahead la =
      machine::compute_lookahead(grid, plan, lookahead_cfg());
  // word_time = 0: the cheapest message is a control word at ctrl_latency.
  EXPECT_EQ(la.horizon, 2);
  EXPECT_EQ(la.horizon, machine::link_min_latency(lookahead_cfg()));
  ASSERT_FALSE(la.edges.empty());
  for (std::size_t i = 0; i < la.edges.size(); ++i) {
    EXPECT_NE(la.edges[i].from, la.edges[i].to);
    EXPECT_EQ(la.edges[i].min_latency, 2);
    if (i > 0) {  // sorted by (from, to), no duplicates
      const auto &a = la.edges[i - 1], &b = la.edges[i];
      EXPECT_TRUE(a.from < b.from || (a.from == b.from && a.to < b.to));
    }
  }
  // Row-major grid split into contiguous row bands: links are undirected,
  // so every cross edge appears in both directions.
  for (const auto& e : la.edges) {
    bool reversed = false;
    for (const auto& r : la.edges)
      reversed |= (r.from == e.to && r.to == e.from);
    EXPECT_TRUE(reversed);
  }
}

TEST(Lookahead, HypercubeAndTreeHorizons) {
  machine::MachineConfig cfg = lookahead_cfg();
  cfg.word_time = 3;  // size-proportional costs: min message is ctrl (size 1)
  const sim::Duration expected = machine::link_min_latency(cfg);
  EXPECT_EQ(expected, 2 + 3 * 1);

  const topo::Hypercube cube(6);
  const auto cube_la = machine::compute_lookahead(
      cube, machine::make_partition_plan(cube.num_nodes(), 4), cfg);
  EXPECT_EQ(cube_la.horizon, expected);
  EXPECT_FALSE(cube_la.edges.empty());

  const topo::KaryTree tree(3, 4);
  const auto tree_la = machine::compute_lookahead(
      tree, machine::make_partition_plan(tree.num_nodes(), 4), cfg);
  EXPECT_EQ(tree_la.horizon, expected);
  EXPECT_FALSE(tree_la.edges.empty());
}

TEST(Lookahead, SinglePartitionNeverSynchronizes) {
  const topo::Grid2D grid(8, 8, false);
  const auto plan = machine::make_partition_plan(grid.num_nodes(), 1);
  const machine::Lookahead la =
      machine::compute_lookahead(grid, plan, lookahead_cfg());
  EXPECT_EQ(la.horizon, sim::kTimeInfinity);
  EXPECT_TRUE(la.edges.empty());
}

TEST(Lookahead, ZeroLatencyModelIsRejected) {
  const topo::Grid2D grid(8, 8, false);
  const auto plan = machine::make_partition_plan(grid.num_nodes(), 4);
  machine::MachineConfig cfg;
  cfg.hop_latency = 0;
  cfg.ctrl_latency = 0;
  cfg.word_time = 0;
  EXPECT_THROW(machine::compute_lookahead(grid, plan, cfg), ConfigError);
  try {
    machine::compute_lookahead(grid, plan, cfg);
  } catch (const ConfigError& e) {
    // The error must point the user at the serial engine.
    EXPECT_NE(std::string(e.what()).find("--sim-threads 1"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Analytic routing (the path Machine uses past kExactRoutingMaxNodes).
// ---------------------------------------------------------------------------

void expect_analytic_routing_is_shortest_path(const topo::Topology& t) {
  const topo::DistanceMatrix dm(t);
  const std::uint32_t n = t.num_nodes();
  for (topo::NodeId from = 0; from < n; ++from) {
    for (topo::NodeId to = 0; to < n; ++to) {
      if (from == to) continue;
      const topo::NodeId nh = t.analytic_next_hop(from, to);
      ASSERT_NE(nh, topo::kInvalidNode)
          << t.name() << " " << from << "->" << to;
      // One hop toward the destination along a shortest path.
      ASSERT_EQ(dm.distance(from, nh), 1u)
          << t.name() << " " << from << "->" << to << " via " << nh;
      ASSERT_EQ(dm.distance(nh, to), dm.distance(from, to) - 1)
          << t.name() << " " << from << "->" << to << " via " << nh;
    }
  }
}

TEST(AnalyticRouting, OpenGridFollowsShortestPaths) {
  expect_analytic_routing_is_shortest_path(topo::Grid2D(6, 5, false));
}

TEST(AnalyticRouting, TorusFollowsShortestPaths) {
  expect_analytic_routing_is_shortest_path(topo::Grid2D(6, 5, true));
  expect_analytic_routing_is_shortest_path(topo::Grid2D(4, 4, true));
}

TEST(AnalyticRouting, HypercubeFollowsShortestPaths) {
  expect_analytic_routing_is_shortest_path(topo::Hypercube(6));
}

TEST(AnalyticRouting, TreeFollowsShortestPaths) {
  expect_analytic_routing_is_shortest_path(topo::KaryTree(3, 4));
  expect_analytic_routing_is_shortest_path(topo::KaryTree(2, 5));
}

TEST(AnalyticRouting, DiameterHintsMatchExactDiameter) {
  const topo::Grid2D open_grid(6, 5, false);
  EXPECT_EQ(open_grid.diameter_hint(),
            static_cast<std::int64_t>(topo::DistanceMatrix(open_grid).diameter()));
  const topo::Grid2D torus(6, 5, true);
  EXPECT_EQ(torus.diameter_hint(),
            static_cast<std::int64_t>(topo::DistanceMatrix(torus).diameter()));
  const topo::Hypercube cube(7);
  EXPECT_EQ(cube.diameter_hint(),
            static_cast<std::int64_t>(topo::DistanceMatrix(cube).diameter()));
  const topo::KaryTree tree(3, 4);
  EXPECT_EQ(tree.diameter_hint(),
            static_cast<std::int64_t>(topo::DistanceMatrix(tree).diameter()));
}

// ---------------------------------------------------------------------------
// Parallel engine determinism.
// ---------------------------------------------------------------------------

core::ExperimentConfig parallel_cfg(const std::string& strategy,
                                    const std::string& workload,
                                    std::uint64_t seed) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:8x8";
  cfg.strategy = strategy;
  cfg.workload = workload;
  cfg.machine.hop_latency = 2;
  cfg.machine.ctrl_latency = 1;
  cfg.machine.seed = seed;
  cfg.machine.sim_partitions = 4;
  return cfg;
}

void expect_same_run(const stats::RunResult& a, const stats::RunResult& b) {
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.goals_executed, b.goals_executed);
  EXPECT_EQ(a.total_work, b.total_work);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.goal_transmissions, b.goal_transmissions);
  EXPECT_EQ(a.response_transmissions, b.response_transmissions);
  EXPECT_EQ(a.control_transmissions, b.control_transmissions);
  EXPECT_EQ(a.pe_goals, b.pe_goals);
  ASSERT_EQ(a.pe_utilization.size(), b.pe_utilization.size());
  for (std::size_t i = 0; i < a.pe_utilization.size(); ++i)
    EXPECT_DOUBLE_EQ(a.pe_utilization[i], b.pe_utilization[i]) << "pe " << i;
  ASSERT_EQ(a.goal_hops.buckets(), b.goal_hops.buckets());
  for (std::size_t h = 0; h < a.goal_hops.buckets(); ++h)
    EXPECT_EQ(a.goal_hops.count(h), b.goal_hops.count(h)) << "hops " << h;
  EXPECT_DOUBLE_EQ(a.avg_channel_utilization, b.avg_channel_utilization);
  EXPECT_DOUBLE_EQ(a.max_channel_utilization, b.max_channel_utilization);
}

TEST(ParallelEngine, MetricsIdenticalAcrossThreadCounts) {
  // The core reproducibility contract: for a fixed partition count the
  // trajectory is a function of the model alone — any worker count (even
  // more workers than shards) must produce the same metrics.
  const char* strategies[] = {"cwn:radius=3,horizon=2",
                              "gm:hwm=2,lwm=1,interval=20"};
  for (const char* strategy : strategies) {
    for (std::uint64_t seed : {1ull, 42ull}) {
      core::ExperimentConfig cfg = parallel_cfg(strategy, "fib:11", seed);
      cfg.machine.sim_threads = 2;
      const stats::RunResult ref = core::run_experiment(cfg);
      for (std::uint32_t threads : {4u, 8u}) {
        cfg.machine.sim_threads = threads;
        const stats::RunResult got = core::run_experiment(cfg);
        SCOPED_TRACE(std::string(strategy) + " seed " + std::to_string(seed) +
                     " threads " + std::to_string(threads));
        expect_same_run(ref, got);
      }
    }
  }
}

TEST(ParallelEngine, RepeatRunsAreDeterministic) {
  core::ExperimentConfig cfg =
      parallel_cfg("cwn:radius=3,horizon=2", "dc:1:144", 7);
  cfg.machine.sim_threads = 4;
  const stats::RunResult a = core::run_experiment(cfg);
  const stats::RunResult b = core::run_experiment(cfg);
  expect_same_run(a, b);
}

TEST(ParallelEngine, ThreadsOneIsTheSerialEngine) {
  // sim_threads == 1 must take the serial golden path even when a partition
  // count is configured: identical to a run with the knobs untouched.
  core::ExperimentConfig cfg =
      parallel_cfg("cwn:radius=9,horizon=2", "fib:13", 42);
  cfg.machine.sim_threads = 1;
  cfg.machine.sim_partitions = 8;
  const stats::RunResult a = core::run_experiment(cfg);

  core::ExperimentConfig plain = cfg;
  plain.machine.sim_threads = 1;
  plain.machine.sim_partitions = 0;
  const stats::RunResult b = core::run_experiment(plain);
  expect_same_run(a, b);
}

TEST(ParallelEngine, AgreesWithSerialOnConservedQuantities) {
  // Completion times may differ between K schedulers and one (control
  // traffic interleaves differently), but conserved quantities cannot.
  core::ExperimentConfig cfg =
      parallel_cfg("cwn:radius=3,horizon=2", "fib:12", 3);
  cfg.machine.sim_threads = 1;
  cfg.machine.sim_partitions = 0;
  const stats::RunResult serial = core::run_experiment(cfg);
  cfg.machine.sim_threads = 4;
  cfg.machine.sim_partitions = 4;
  const stats::RunResult par = core::run_experiment(cfg);
  EXPECT_EQ(par.goals_executed, serial.goals_executed);
  EXPECT_EQ(par.total_work, serial.total_work);
  EXPECT_GE(par.completion_time, par.critical_path);
}

TEST(ParallelEngine, RejectsSamplingAndTracing) {
  // The sampler and the machine trace are global-clock features; the
  // parallel engine refuses them up front rather than recording garbage.
  core::ExperimentConfig cfg =
      parallel_cfg("cwn:radius=3,horizon=2", "fib:10", 1);
  cfg.machine.sim_threads = 2;
  cfg.machine.sample_interval = 10;
  EXPECT_THROW(core::run_experiment(cfg), ConfigError);
  cfg.machine.sample_interval = 0;
  cfg.machine.trace_capacity = 128;
  EXPECT_THROW(core::run_experiment(cfg), ConfigError);
  cfg.machine.trace_capacity = 0;
  EXPECT_NO_THROW(core::run_experiment(cfg));
}

TEST(ParallelEngine, MillionPePresetIsWellFormed) {
  // Shape-check only — building the 10^6-node topology is bench territory.
  const core::ExperimentConfig cfg = core::paper::million_pe_config();
  EXPECT_EQ(cfg.topology, "torus:1000x1000");
  EXPECT_EQ(cfg.workload, "dc:1:2000000");
  EXPECT_NE(cfg.strategy.find("cwn"), std::string::npos);
  EXPECT_EQ(cfg.machine.sim_partitions, 16u);
  EXPECT_EQ(cfg.machine.sim_threads, 1u);  // engage via --sim-threads
  EXPECT_GE(cfg.machine.max_events, 1'000'000'000ull);
  EXPECT_EQ(cfg.machine.sample_interval, 0);
  EXPECT_EQ(cfg.machine.trace_capacity, 0u);
}

}  // namespace
}  // namespace oracle
