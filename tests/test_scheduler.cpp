// Unit tests for the discrete-event scheduler: ordering, determinism,
// cancellation, budgets, and stop requests.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/scheduler.hpp"

namespace oracle::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, SimultaneousEventsAreFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  SimTime inner_time = -1;
  s.schedule_at(10, [&] {
    s.schedule_after(5, [&] { inner_time = s.now(); });
  });
  s.run();
  EXPECT_EQ(inner_time, 15);
}

TEST(Scheduler, ClockOnlyMovesForward) {
  Scheduler s;
  SimTime last = 0;
  for (int i = 0; i < 100; ++i) {
    s.schedule_at(i % 17, [&, ts = i % 17] {
      EXPECT_GE(ts, last);
      last = ts;
    });
  }
  s.run();
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventHandle h = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(h));
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, CancelTwiceFails) {
  Scheduler s;
  const EventHandle h = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.cancel(h));
}

TEST(Scheduler, CancelAfterFireFails) {
  Scheduler s;
  const EventHandle h = s.schedule_at(1, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(h));
}

TEST(Scheduler, CancelInvalidHandleFails) {
  Scheduler s;
  EXPECT_FALSE(s.cancel(EventHandle{}));
}

TEST(Scheduler, CancelledEventDoesNotBlockOthers) {
  Scheduler s;
  std::vector<int> order;
  const EventHandle h = s.schedule_at(5, [&] { order.push_back(0); });
  s.schedule_at(5, [&] { order.push_back(1); });
  s.schedule_at(6, [&] { order.push_back(2); });
  s.cancel(h);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, RunUntilHorizonStopsEarly) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(5, [&] { ++fired; });
  s.schedule_at(15, [&] { ++fired; });
  s.run(/*until=*/10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, EventBudgetThrows) {
  Scheduler s;
  std::function<void()> loop = [&] { s.schedule_after(1, loop); };
  s.schedule_at(0, loop);
  EXPECT_THROW(s.run(kTimeInfinity, 100), SimulationError);
}

TEST(Scheduler, RequestStopHaltsDispatch) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1, [&] {
    ++fired;
    s.request_stop();
  });
  s.schedule_at(2, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  std::vector<SimTime> fired;
  s.schedule_at(1, [&] {
    fired.push_back(s.now());
    s.schedule_after(3, [&] { fired.push_back(s.now()); });
  });
  s.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{1, 4}));
}

TEST(Scheduler, ExecutedCountTracks) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  s.schedule_at(3, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    const SimTime t = (i * 7919) % 1000;
    s.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(s.executed(), 20000u);
}

}  // namespace
}  // namespace oracle::sim
