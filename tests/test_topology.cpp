// Tests for the topology substrate: grids, DLMs, hypercubes, rings, and
// the structural properties the paper's comparison depends on.

#include <gtest/gtest.h>

#include "topo/dlm.hpp"
#include "topo/factory.hpp"
#include "topo/graph_algos.hpp"
#include "topo/grid.hpp"
#include "topo/hypercube.hpp"
#include "util/error.hpp"

namespace oracle::topo {
namespace {

// --------------------------------------------------------------------------
// Grid2D
// --------------------------------------------------------------------------

TEST(Grid, OpenGridLinkCount) {
  const Grid2D g(3, 4, false);
  EXPECT_EQ(g.num_nodes(), 12u);
  // 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8 = 17.
  EXPECT_EQ(g.num_links(), 17u);
}

TEST(Grid, TorusLinkCount) {
  const Grid2D g(4, 4, true);
  // Torus: 2 links per node.
  EXPECT_EQ(g.num_links(), 32u);
}

TEST(Grid, CornerDegreeOpen) {
  const Grid2D g(5, 5, false);
  EXPECT_EQ(g.neighbors(g.node_at(0, 0)).size(), 2u);
  EXPECT_EQ(g.neighbors(g.node_at(2, 2)).size(), 4u);
  EXPECT_EQ(g.neighbors(g.node_at(0, 2)).size(), 3u);
}

TEST(Grid, TorusAllDegreeFour) {
  const Grid2D g(5, 5, true);
  for (NodeId n = 0; n < g.num_nodes(); ++n)
    EXPECT_EQ(g.neighbors(n).size(), 4u);
}

TEST(Grid, PaperDiametersOpenGrid) {
  // The paper quotes grid diameters "from 8 to 38" (5x5 .. 20x20).
  EXPECT_EQ(DistanceMatrix(Grid2D(5, 5, false)).diameter(), 8u);
  EXPECT_EQ(DistanceMatrix(Grid2D(8, 8, false)).diameter(), 14u);
  EXPECT_EQ(DistanceMatrix(Grid2D(10, 10, false)).diameter(), 18u);
  EXPECT_EQ(DistanceMatrix(Grid2D(20, 20, false)).diameter(), 38u);
}

TEST(Grid, TorusDiameterHalves) {
  EXPECT_EQ(DistanceMatrix(Grid2D(10, 10, true)).diameter(), 10u);
}

TEST(Grid, ManhattanMatchesBfs) {
  const Grid2D g(6, 7, false);
  const DistanceMatrix dm(g);
  for (NodeId a = 0; a < g.num_nodes(); a += 5)
    for (NodeId b = 0; b < g.num_nodes(); b += 3)
      EXPECT_EQ(dm.distance(a, b), g.manhattan(a, b));
}

TEST(Grid, TorusManhattanMatchesBfs) {
  const Grid2D g(6, 6, true);
  const DistanceMatrix dm(g);
  for (NodeId a = 0; a < g.num_nodes(); ++a)
    for (NodeId b = 0; b < g.num_nodes(); ++b)
      ASSERT_EQ(dm.distance(a, b), g.manhattan(a, b));
}

TEST(Grid, TwoWideWrapHasNoDuplicateLinks) {
  const Grid2D g(2, 5, true);
  // Rows of length 2 would self-duplicate on wrap; ensure adjacency stays
  // a simple graph.
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const auto& adj = g.neighbors(n);
    for (std::size_t i = 1; i < adj.size(); ++i)
      EXPECT_LT(adj[i - 1], adj[i]);  // sorted & unique
  }
}

TEST(Grid, SingleNodeGridIsValid) {
  const Grid2D g(1, 1, false);
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

// --------------------------------------------------------------------------
// Hypercube
// --------------------------------------------------------------------------

TEST(Hypercube, SizesAndDegrees) {
  for (std::uint32_t d = 1; d <= 8; ++d) {
    const Hypercube h(d);
    EXPECT_EQ(h.num_nodes(), 1u << d);
    for (NodeId n = 0; n < h.num_nodes(); ++n)
      ASSERT_EQ(h.neighbors(n).size(), d);
    EXPECT_EQ(h.num_links(), (static_cast<std::size_t>(d) << d) / 2);
  }
}

TEST(Hypercube, DiameterEqualsDimension) {
  for (std::uint32_t d : {2u, 5u, 7u}) {
    EXPECT_EQ(DistanceMatrix(Hypercube(d)).diameter(), d);
  }
}

TEST(Hypercube, BfsMatchesHamming) {
  const Hypercube h(6);
  const DistanceMatrix dm(h);
  for (NodeId a = 0; a < h.num_nodes(); a += 7)
    for (NodeId b = 0; b < h.num_nodes(); b += 5)
      EXPECT_EQ(dm.distance(a, b), Hypercube::hamming(a, b));
}

// --------------------------------------------------------------------------
// DoubleLatticeMesh
// --------------------------------------------------------------------------

TEST(Dlm, PaperConfigurationsConnectAndAreSmallDiameter) {
  // The paper relies on DLM diameters of 4-5 versus 8-38 for the grids.
  struct Case {
    std::uint32_t span, rows, cols, max_diameter;
  };
  for (const Case c : {Case{5, 5, 5, 3}, Case{4, 8, 8, 5}, Case{5, 10, 10, 5},
                       Case{4, 16, 16, 6}, Case{5, 20, 20, 6}}) {
    const DoubleLatticeMesh dlm(c.span, c.rows, c.cols);
    EXPECT_TRUE(is_connected(dlm)) << dlm.name();
    const DistanceMatrix dm(dlm);
    EXPECT_LE(dm.diameter(), c.max_diameter) << dlm.name();
    EXPECT_GE(dm.diameter(), 2u) << dlm.name();
  }
}

TEST(Dlm, EveryNodeOnFourBusesInRegularCase) {
  const DoubleLatticeMesh dlm(5, 10, 10);
  for (NodeId n = 0; n < dlm.num_nodes(); ++n)
    EXPECT_EQ(dlm.links_of(n).size(), 4u) << "node " << n;
}

TEST(Dlm, BusesHaveSpanMembers) {
  const DoubleLatticeMesh dlm(5, 10, 10);
  for (const Link& link : dlm.links()) {
    EXPECT_EQ(link.members.size(), 5u);
    EXPECT_TRUE(link.is_bus());
  }
}

TEST(Dlm, NeighborhoodLargerThanGrid) {
  // A key property: one bus hop reaches span-1 PEs per bus, so the DLM
  // neighborhood is much larger than the grid's 4.
  const DoubleLatticeMesh dlm(5, 10, 10);
  const Grid2D grid(10, 10, false);
  std::size_t min_deg = SIZE_MAX;
  for (NodeId n = 0; n < dlm.num_nodes(); ++n)
    min_deg = std::min(min_deg, dlm.neighbors(n).size());
  EXPECT_GT(min_deg, grid.max_degree());
}

TEST(Dlm, SpanEqualsDimensionDegeneratesToFullRowBuses) {
  const DoubleLatticeMesh dlm(5, 5, 5);
  // One bus per row + one per column (local lattice == skip lattice,
  // deduplicated): 10 buses.
  EXPECT_EQ(dlm.num_links(), 10u);
  EXPECT_EQ(DistanceMatrix(dlm).diameter(), 2u);
}

TEST(Dlm, RejectsBadParameters) {
  EXPECT_THROW(DoubleLatticeMesh(1, 5, 5), ConfigError);
  EXPECT_THROW(DoubleLatticeMesh(9, 5, 5), ConfigError);
}

// --------------------------------------------------------------------------
// Ring / Complete / base Topology
// --------------------------------------------------------------------------

TEST(Ring, StructureAndDiameter) {
  const Ring r(8);
  for (NodeId n = 0; n < 8; ++n) EXPECT_EQ(r.neighbors(n).size(), 2u);
  EXPECT_EQ(DistanceMatrix(r).diameter(), 4u);
}

TEST(Complete, DiameterOne) {
  const Complete c(6);
  EXPECT_EQ(c.num_links(), 15u);
  EXPECT_EQ(DistanceMatrix(c).diameter(), 1u);
}

TEST(Topology, LinkBetweenFindsSharedLink) {
  const Grid2D g(3, 3, false);
  EXPECT_NE(g.link_between(0, 1), kInvalidLink);
  EXPECT_EQ(g.link_between(0, 8), kInvalidLink);
}

TEST(Topology, AreNeighborsConsistentWithLinks) {
  const DoubleLatticeMesh dlm(4, 8, 8);
  for (NodeId a = 0; a < dlm.num_nodes(); a += 3) {
    for (NodeId b = 0; b < dlm.num_nodes(); b += 5) {
      const bool adj = dlm.are_neighbors(a, b);
      EXPECT_EQ(adj, a != b && dlm.link_between(a, b) != kInvalidLink);
    }
  }
}

// --------------------------------------------------------------------------
// Factory
// --------------------------------------------------------------------------

TEST(TopoFactory, ParsesAllKinds) {
  EXPECT_EQ(make_topology("grid:3x4")->num_nodes(), 12u);
  EXPECT_EQ(make_topology("torus:4x4")->num_nodes(), 16u);
  EXPECT_EQ(make_topology("dlm:5:10x10")->num_nodes(), 100u);
  EXPECT_EQ(make_topology("hypercube:5")->num_nodes(), 32u);
  EXPECT_EQ(make_topology("ring:9")->num_nodes(), 9u);
  EXPECT_EQ(make_topology("complete:7")->num_nodes(), 7u);
}

TEST(TopoFactory, TrimsAndLowercases) {
  EXPECT_EQ(make_topology("  GRID:2x2 ")->num_nodes(), 4u);
}

TEST(TopoFactory, RejectsMalformedSpecs) {
  EXPECT_THROW(make_topology(""), ConfigError);
  EXPECT_THROW(make_topology("grid"), ConfigError);
  EXPECT_THROW(make_topology("grid:3"), ConfigError);
  EXPECT_THROW(make_topology("grid:0x4"), ConfigError);
  EXPECT_THROW(make_topology("dlm:10x10"), ConfigError);
  EXPECT_THROW(make_topology("mesh:3x3"), ConfigError);
  EXPECT_THROW(make_topology("hypercube:25"), ConfigError);
}

// --------------------------------------------------------------------------
// Property suite over families (parameterized)
// --------------------------------------------------------------------------

class TopologyProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(TopologyProperties, ConnectedSymmetricSimple) {
  const auto topo = make_topology(GetParam());
  EXPECT_TRUE(is_connected(*topo));
  for (NodeId a = 0; a < topo->num_nodes(); ++a) {
    const auto& adj = topo->neighbors(a);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (i) {
        ASSERT_LT(adj[i - 1], adj[i]);  // sorted, no duplicates
      }
      ASSERT_NE(adj[i], a);  // no self loops
      // Symmetry.
      ASSERT_TRUE(topo->are_neighbors(adj[i], a));
    }
  }
}

TEST_P(TopologyProperties, DistanceMatrixIsAMetric) {
  const auto topo = make_topology(GetParam());
  const DistanceMatrix dm(*topo);
  const NodeId n = topo->num_nodes();
  const NodeId step = std::max<NodeId>(1, n / 12);
  for (NodeId a = 0; a < n; a += step) {
    EXPECT_EQ(dm.distance(a, a), 0u);
    for (NodeId b = 0; b < n; b += step) {
      ASSERT_EQ(dm.distance(a, b), dm.distance(b, a));
      for (NodeId c = 0; c < n; c += step)
        ASSERT_LE(dm.distance(a, c), dm.distance(a, b) + dm.distance(b, c));
    }
  }
  EXPECT_GE(dm.average_distance(), n > 1 ? 1.0 : 0.0);
  EXPECT_LE(dm.average_distance(), static_cast<double>(dm.diameter()));
}

TEST_P(TopologyProperties, RoutingTableFollowsShortestPaths) {
  const auto topo = make_topology(GetParam());
  const DistanceMatrix dm(*topo);
  const RoutingTable routes(*topo);
  const NodeId n = topo->num_nodes();
  const NodeId step = std::max<NodeId>(1, n / 20);
  for (NodeId from = 0; from < n; from += step) {
    for (NodeId to = 0; to < n; to += step) {
      if (from == to) continue;
      // Walking next hops reaches `to` in exactly distance(from, to) hops.
      NodeId cur = from;
      std::uint32_t hops = 0;
      while (cur != to) {
        const NodeId next = routes.next_hop(cur, to);
        ASSERT_TRUE(topo->are_neighbors(cur, next));
        ASSERT_EQ(dm.distance(next, to) + 1, dm.distance(cur, to));
        cur = next;
        ASSERT_LE(++hops, dm.diameter());
      }
      ASSERT_EQ(hops, dm.distance(from, to));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, TopologyProperties,
                         ::testing::Values("grid:5x5", "grid:4x7", "torus:5x5",
                                           "torus:3x8", "dlm:5:5x5",
                                           "dlm:4:8x8", "dlm:5:10x10",
                                           "dlm:3:6x9", "hypercube:3",
                                           "hypercube:6", "ring:10",
                                           "complete:8"));

}  // namespace
}  // namespace oracle::topo
