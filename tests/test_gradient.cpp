// Tests of the Gradient Model: state computation, proximity propagation,
// single-hop transfers, and the paper-documented behaviours (work kept
// locally by default; re-distribution is possible; low average distance).

#include <gtest/gtest.h>

#include "lb/gradient.hpp"
#include "machine/machine.hpp"
#include "topo/factory.hpp"
#include "topo/grid.hpp"
#include "util/error.hpp"
#include "workload/fib.hpp"

namespace oracle::lb {
namespace {

workload::CostModel costs() { return workload::CostModel{100, 40, 40}; }

machine::MachineConfig cfg(std::uint64_t seed = 1) {
  machine::MachineConfig c;
  c.seed = seed;
  return c;
}

stats::RunResult run_gm(const topo::Topology& topo,
                        const workload::Workload& wl, GmParams params,
                        std::uint64_t seed = 1) {
  GradientModel strategy(params);
  machine::Machine m(topo, wl, strategy, cfg(seed));
  return m.run();
}

TEST(GradientModel, ParamValidation) {
  GmParams p;
  p.interval = 0;
  EXPECT_THROW(GradientModel{p}, ConfigError);
  p = GmParams{};
  p.low_water_mark = 5;
  p.high_water_mark = 2;
  EXPECT_THROW(GradientModel{p}, ConfigError);
}

TEST(GradientModel, CompletesAndConservesGoals) {
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(11, costs());
  const auto r = run_gm(grid, wl, GmParams{});
  EXPECT_EQ(r.goals_executed, wl.summarize().total_goals);
  EXPECT_GT(r.avg_utilization, 0.0);
}

TEST(GradientModel, ManyGoalsNeverMove) {
  // "A significant number of goals just stay at the PE they were created
  // on" — the 0-hop bucket dominates.
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(13, costs());
  const auto r = run_gm(grid, wl, GmParams{});
  EXPECT_GT(r.goal_hops.count(0), r.goal_hops.total() / 4);
  EXPECT_LT(r.avg_goal_distance, 3.0);
}

TEST(GradientModel, LowerCommunicationThanCwnStyleFlooding) {
  // GM moves far fewer goal messages than the tree has goals * hops.
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(12, costs());
  const auto r = run_gm(grid, wl, GmParams{});
  EXPECT_LT(r.goal_transmissions, 3 * wl.summarize().total_goals);
}

TEST(GradientModel, DeterministicForSeed) {
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(11, costs());
  const auto a = run_gm(grid, wl, GmParams{}, 5);
  const auto b = run_gm(grid, wl, GmParams{}, 5);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.goal_transmissions, b.goal_transmissions);
  EXPECT_EQ(a.control_transmissions, b.control_transmissions);
}

TEST(GradientModel, ProximityUpdatesAreBroadcast) {
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(10, costs());
  const auto r = run_gm(grid, wl, GmParams{});
  // At minimum, the PEs that became non-idle broadcast a proximity change.
  EXPECT_GT(r.control_transmissions, 0u);
}

TEST(GradientModel, HigherHwmHoardsMore) {
  // Raising the high-water-mark makes PEs hoard (fewer goal transfers).
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(12, costs());
  GmParams low, high;
  low.high_water_mark = 1;
  high.high_water_mark = 20;
  const auto rl = run_gm(grid, wl, low);
  const auto rh = run_gm(grid, wl, high);
  EXPECT_LT(rh.goal_transmissions, rl.goal_transmissions);
}

TEST(GradientModel, ShorterIntervalIsMoreAgile) {
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(12, costs());
  GmParams fast, slow;
  fast.interval = 10;
  slow.interval = 200;
  const auto rf = run_gm(grid, wl, fast);
  const auto rs = run_gm(grid, wl, slow);
  EXPECT_GT(rf.avg_utilization, rs.avg_utilization);
}

TEST(GradientModel, EveryMoveIsOneHopPerCycle) {
  // All transfers are neighbor hops: the hop histogram never exceeds the
  // number of gradient cycles, and distances stay small relative to CWN.
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(10, costs());
  const auto r = run_gm(grid, wl, GmParams{});
  // goal_transmissions == total weighted distance (each move = 1 hop).
  std::uint64_t weighted = 0;
  for (std::size_t h = 0; h < r.goal_hops.buckets(); ++h)
    weighted += h * r.goal_hops.count(h);
  EXPECT_EQ(weighted, r.goal_transmissions);
}

TEST(GradientModel, RequireGradientReducesBlindSends) {
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(12, costs());
  GmParams strict, blind;
  strict.require_gradient = true;
  blind.require_gradient = false;
  const auto rs = run_gm(grid, wl, strict);
  const auto rb = run_gm(grid, wl, blind);
  EXPECT_LE(rs.goal_transmissions, rb.goal_transmissions);
}

TEST(GradientModel, StaggerOffDeterministicToo) {
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(10, costs());
  GmParams p;
  p.stagger = false;
  const auto a = run_gm(grid, wl, p, 3);
  const auto b = run_gm(grid, wl, p, 3);
  EXPECT_EQ(a.completion_time, b.completion_time);
}

}  // namespace
}  // namespace oracle::lb
