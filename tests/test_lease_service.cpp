// Fault-injection tests for the cross-host lease service
// (exp::LeaseService + exp::LeaseClient + the lease-server flavour of the
// shard supervisor): protocol round-trips, fencing-epoch rejection,
// write-ahead journal replay with a torn tail, adaptive expiry +
// reassignment of a silent slot, and the deterministic kill matrix —
// worker SIGKILL, server SIGKILL (workers orphan, journal replay +
// --resume converges), and a 30% frame-drop network between client and
// server.
//
// Like test_shard_faults, the binary is its own fleet: a custom main()
// dispatches to a lease worker (argv[1] == "--lease-worker") or a lease
// server (argv[1] == "--lease-server-role"), so both the supervisor under
// test and the tests themselves can self-exec this executable.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.hpp"
#include "exp/exp.hpp"
#include "obs/status.hpp"
#include "util/error.hpp"
#include "util/file_util.hpp"
#include "util/net.hpp"
#include "util/posix_io.hpp"

#if !defined(_WIN32)

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace oracle {
namespace {

std::string g_self;  ///< argv[0], for worker/server self-exec

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:5x5";
  cfg.strategy = "cwn:radius=4,horizon=1";
  cfg.workload = "fib:9";
  cfg.machine.seed = 1;
  return cfg;
}

/// The fixed sweep shared by the tests, the self-exec'd workers, and the
/// self-exec'd server: 3 x 3 x 2 = 18 fast jobs.
std::vector<core::ExperimentConfig> fault_sweep() {
  return core::SweepBuilder(small_config())
      .topologies({"grid:5x5", "grid:6x6", "dlm:5:5x5"})
      .strategies({"cwn:radius=4,horizon=1", "gm:hwm=2,lwm=1", "random"})
      .seeds({1, 2})
      .build();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "oracle_lease_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Serial golden store, produced once and shared by every test.
const std::string& serial_store() {
  static std::string path;
  static std::once_flag once;
  std::call_once(once, [] {
    // Pid-unique: ctest runs each TEST as its own process, concurrently —
    // a shared path would be remove()d and rewritten under a sibling
    // process mid-comparison.
    path = temp_path("serial_golden." + std::to_string(::getpid()) +
                     ".jsonl");
    std::remove(path.c_str());
    std::remove(exp::Checkpoint::default_path(path).c_str());
    exp::BatchOptions opt;
    opt.jsonl_path = path;
    opt.collect = false;
    const auto outcome = exp::run_batch(fault_sweep(), opt);
    ORACLE_REQUIRE(outcome.report.ok(), "serial golden run failed");
  });
  return path;
}

void remove_run_files(const std::string& canonical, std::size_t slots) {
  std::remove(canonical.c_str());
  std::remove(exp::Checkpoint::default_path(canonical).c_str());
  std::remove((canonical + ".marker").c_str());
  std::remove(exp::quarantine_path(canonical).c_str());
  for (std::size_t k = 0; k < slots; ++k) {
    const auto store = exp::worker_store_path(canonical, k, slots);
    std::remove(store.c_str());
    std::remove(exp::Checkpoint::default_path(store).c_str());
  }
}

// --------------------------------------------------------------- helpers --

/// In-process lease server on an ephemeral port, running on its own
/// thread until stop().
struct ServerThread {
  explicit ServerThread(exp::LeaseServiceOptions opt) : svc(std::move(opt)) {
    svc.start();
    th = std::thread([this] { stats = svc.run(); });
  }
  ~ServerThread() { stop(); }
  void stop() {
    svc.stop();
    if (th.joinable()) th.join();
  }
  std::uint16_t port() const { return svc.port(); }

  exp::LeaseService svc;
  std::thread th;
  exp::LeaseServiceStats stats;
};

exp::LeaseServiceOptions service_options(const std::string& journal,
                                         std::size_t slots) {
  exp::LeaseServiceOptions opt;
  opt.jobs = fault_sweep().size();
  opt.slots = slots;
  opt.journal_path = journal;
  opt.poll_ms = 5;
  opt.linger_ms = 60'000;  // in-process tests stop() explicitly
  return opt;
}

exp::LeaseClientOptions client_options(std::uint16_t port, std::size_t slot,
                                       std::size_t slot_count) {
  exp::LeaseClientOptions copt;
  copt.server = util::HostPort{"127.0.0.1", port};
  copt.slot = slot;
  copt.slot_count = slot_count;
  copt.jobs = fault_sweep().size();
  copt.op_timeout_ms = 1'000;
  copt.retry_budget = 10;
  copt.backoff_base_ms = 5;
  copt.backoff_cap_ms = 50;
  return copt;
}

pid_t spawn_process(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

/// Spawn this binary as a lease server over fault_sweep(); returns its
/// pid. The child writes its bound port to `portfile` (atomically) and
/// its final stats to `statsfile` on exit.
pid_t spawn_server(const std::string& journal, const std::string& portfile,
                   const std::string& statsfile, std::size_t slots,
                   std::uint32_t linger_ms) {
  std::remove(portfile.c_str());
  return spawn_process({exp::self_exec_path(g_self), "--lease-server-role",
                        "--journal", journal, "--portfile", portfile,
                        "--statsfile", statsfile, "--slots",
                        std::to_string(slots), "--linger-ms",
                        std::to_string(linger_ms)});
}

std::optional<int> wait_for_port(const std::string& portfile,
                                 double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<int>(timeout_s * 1000));
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string text = read_file(portfile);
    if (!text.empty()) return std::stoi(text);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return std::nullopt;
}

/// Key-value stats file written by the server role on exit.
std::map<std::string, long long> read_stats_file(const std::string& path) {
  std::map<std::string, long long> kv;
  std::ifstream in(path);
  std::string key;
  long long value = 0;
  while (in >> key >> value) kv[key] = value;
  return kv;
}

/// Launch a lease-server-mode supervised run over fault_sweep().
exp::ShardRunReport run_supervised(const std::string& canonical, int port,
                                   std::size_t workers, bool resume,
                                   const std::vector<std::string>& extra = {}) {
  exp::ShardRunOptions sopt;
  sopt.workers = workers;
  sopt.out = canonical;
  sopt.resume = resume;
  sopt.lease_server = "127.0.0.1:" + std::to_string(port);
  sopt.poll_ms = 10;
  sopt.max_restarts = 2;
  sopt.exec_path = exp::self_exec_path(g_self);
  sopt.worker_args = {"--lease-worker", "--out", canonical};
  sopt.worker_args.insert(sopt.worker_args.end(), extra.begin(), extra.end());
  return exp::run_sharded_processes(fault_sweep(), sopt);
}

int wait_child(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

// ------------------------------------------------------- protocol tests --

TEST(LeaseProtocol, RequestRoundTrips) {
  exp::LeaseRequest req;
  req.seq = 42;
  req.op = exp::LeaseOp::kAcquire;
  req.slot = 3;
  req.slot_count = 8;
  req.jobs = 1234;
  auto back = exp::LeaseRequest::parse(req.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 42u);
  EXPECT_EQ(back->op, exp::LeaseOp::kAcquire);
  EXPECT_EQ(back->slot, 3u);
  EXPECT_EQ(back->slot_count, 8u);
  EXPECT_EQ(back->jobs, 1234u);

  exp::LeaseRequest commit;
  commit.seq = 7;
  commit.op = exp::LeaseOp::kCommit;
  commit.slot = 1;
  commit.epoch = 5;
  commit.frontier = 99;
  commit.wall_us = 123456;
  commit.retries = 17;
  back = exp::LeaseRequest::parse(commit.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->op, exp::LeaseOp::kCommit);
  EXPECT_EQ(back->epoch, 5u);
  EXPECT_EQ(back->frontier, 99u);
  EXPECT_EQ(back->wall_us, 123456u);
  EXPECT_EQ(back->retries, 17u);

  for (const auto op : {exp::LeaseOp::kHeartbeat, exp::LeaseOp::kSteal,
                        exp::LeaseOp::kStatus}) {
    exp::LeaseRequest r;
    r.seq = 9;
    r.op = op;
    r.slot = 2;
    r.epoch = 4;
    const auto rb = exp::LeaseRequest::parse(r.encode());
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(rb->op, op);
    EXPECT_EQ(rb->seq, 9u);
  }
}

TEST(LeaseProtocol, ResponseRoundTripsIncludingFreeText) {
  exp::LeaseResponse lease;
  lease.seq = 11;
  lease.kind = exp::LeaseResponseKind::kLease;
  lease.epoch = 6;
  lease.begin = 10;
  lease.end = 20;
  auto back = exp::LeaseResponse::parse(lease.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 11u);
  EXPECT_EQ(back->kind, exp::LeaseResponseKind::kLease);
  EXPECT_EQ(back->epoch, 6u);
  EXPECT_EQ(back->begin, 10u);
  EXPECT_EQ(back->end, 20u);

  exp::LeaseResponse status;
  status.seq = 12;
  status.kind = exp::LeaseResponseKind::kStatus;
  status.text = R"({"phase": "serving", "jobs_done": 3})";
  back = exp::LeaseResponse::parse(status.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, exp::LeaseResponseKind::kStatus);
  EXPECT_EQ(back->text, status.text) << "status text with spaces must survive";

  exp::LeaseResponse err;
  err.seq = 13;
  err.kind = exp::LeaseResponseKind::kError;
  err.text = "sweep shape mismatch: expected 18 jobs";
  back = exp::LeaseResponse::parse(err.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, exp::LeaseResponseKind::kError);
  EXPECT_EQ(back->text, err.text);

  for (const auto kind :
       {exp::LeaseResponseKind::kOk, exp::LeaseResponseKind::kFenced,
        exp::LeaseResponseKind::kEmpty, exp::LeaseResponseKind::kDone}) {
    exp::LeaseResponse r;
    r.seq = 14;
    r.kind = kind;
    r.begin = 1;
    r.end = 2;
    const auto rb = exp::LeaseResponse::parse(r.encode());
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(rb->kind, kind);
  }
}

TEST(LeaseProtocol, RejectsMalformedFrames) {
  for (const std::string bad :
       {"", "v2 1 acquire 0 2 18", "v1 notanum acquire 0 2 18",
        "v1 1 bogus-op 0", "v1 1 acquire 0", "v1", "acquire 0 2 18"}) {
    EXPECT_FALSE(exp::LeaseRequest::parse(bad).has_value())
        << "request should be rejected: " << bad;
  }
  for (const std::string bad :
       {"", "v2 1 lease 1 0 9", "v1 x lease 1 0 9", "v1 1 bogus-kind",
        "v1 1 lease 1"}) {
    EXPECT_FALSE(exp::LeaseResponse::parse(bad).has_value())
        << "response should be rejected: " << bad;
  }
}

TEST(LeaseProtocol, HostPortParses) {
  const auto hp = util::HostPort::parse("127.0.0.1:9090");
  ASSERT_TRUE(hp.has_value());
  EXPECT_EQ(hp->host, "127.0.0.1");
  EXPECT_EQ(hp->port, 9090);
  EXPECT_EQ(hp->str(), "127.0.0.1:9090");

  // A bare port or empty host defaults to loopback.
  const auto bare = util::HostPort::parse(":1234");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->host, "127.0.0.1");
  EXPECT_EQ(bare->port, 1234);
  const auto port_only = util::HostPort::parse("8080");
  ASSERT_TRUE(port_only.has_value());
  EXPECT_EQ(port_only->host, "127.0.0.1");
  EXPECT_EQ(port_only->port, 8080);

  EXPECT_FALSE(util::HostPort::parse("nohost").has_value());
  EXPECT_FALSE(util::HostPort::parse("host:").has_value());
  EXPECT_FALSE(util::HostPort::parse("host:notaport").has_value());
  EXPECT_FALSE(util::HostPort::parse("host:70000").has_value());
  EXPECT_FALSE(util::HostPort::parse("host:0").has_value());
  EXPECT_TRUE(
      util::HostPort::parse("host:0", /*allow_port_zero=*/true).has_value());
}

// -------------------------------------------------- in-process service --

TEST(LeaseService, FencingRejectsStaleEpochsAndPreservesTheFrontier) {
  const auto journal = temp_path("fencing.journal");
  std::remove(journal.c_str());
  ServerThread srv(service_options(journal, 2));

  // A holds slot 0 under epoch e1 and commits a frontier.
  exp::LeaseClient a(client_options(srv.port(), 0, 2));
  const auto grant_a = a.acquire();
  ASSERT_TRUE(grant_a.has_value());
  EXPECT_EQ(grant_a->epoch, 1u);
  std::size_t end = 0;
  EXPECT_EQ(a.commit(grant_a->epoch, 3, 1000, &end),
            exp::LeaseClient::CommitResult::kOk);
  EXPECT_EQ(end, grant_a->end);

  // B re-acquires the same slot: a fresh epoch fences A.
  exp::LeaseClient b(client_options(srv.port(), 0, 2));
  const auto grant_b = b.acquire();
  ASSERT_TRUE(grant_b.has_value());
  EXPECT_GT(grant_b->epoch, grant_a->epoch);

  // A's writes are now rejected; B's are accepted; the frontier moves
  // only under the live epoch.
  EXPECT_EQ(a.commit(grant_a->epoch, 5, 1000, &end),
            exp::LeaseClient::CommitResult::kFenced);
  EXPECT_EQ(b.commit(grant_b->epoch, 4, 1000, &end),
            exp::LeaseClient::CommitResult::kOk);
  EXPECT_EQ(a.heartbeat(grant_a->epoch, &end),
            exp::LeaseClient::CommitResult::kFenced);
  EXPECT_EQ(a.fenced(), 2u);

  const auto status_json = b.status();
  ASSERT_TRUE(status_json.has_value());
  const auto snapshot = obs::StatusSnapshot::parse(*status_json);
  ASSERT_TRUE(snapshot.has_value()) << *status_json;
  ASSERT_EQ(snapshot->workers.size(), 2u);
  EXPECT_EQ(snapshot->workers[0].frontier, 4u)
      << "fenced commit of 5 must not have clobbered B's frontier";
  EXPECT_EQ(snapshot->fenced, 2u);

  srv.stop();
  EXPECT_EQ(srv.stats.grants, 2u);
  EXPECT_EQ(srv.stats.fenced, 2u);
  EXPECT_FALSE(srv.stats.completed);
  std::remove(journal.c_str());
}

TEST(LeaseService, JournalReplayRestoresStateToleratingATornTail) {
  const auto journal = temp_path("replay.journal");
  std::remove(journal.c_str());
  const auto base = service_options(journal, 2);

  // First server instance: grant two slots, advance one frontier.
  {
    ServerThread srv(base);
    exp::LeaseClient a(client_options(srv.port(), 0, 2));
    const auto grant = a.acquire();
    ASSERT_TRUE(grant.has_value());
    std::size_t end = 0;
    EXPECT_EQ(a.commit(grant->epoch, 5, 1000, &end),
              exp::LeaseClient::CommitResult::kOk);
    exp::LeaseClient b(client_options(srv.port(), 1, 2));
    ASSERT_TRUE(b.acquire().has_value());
    srv.stop();
    EXPECT_GE(srv.stats.journal_records, 3u);  // grant, frontier, grant
  }

  // Simulate a crash mid-append: one garbage line plus a torn final
  // record with no newline.
  {
    std::ofstream out(journal, std::ios::app | std::ios::binary);
    out << "J1 frontier 0 nonsense\n";
    out << "J1 gran";
  }

  // Second instance replays everything valid and skips the torn tail.
  {
    ServerThread srv(base);
    EXPECT_GE(srv.svc.stats().replayed_records, 3u);
    EXPECT_EQ(srv.svc.stats().torn_journal_records, 2u);

    exp::LeaseClient a(client_options(srv.port(), 0, 2));
    const auto grant = a.acquire();
    ASSERT_TRUE(grant.has_value());
    EXPECT_EQ(grant->epoch, 2u) << "replayed epoch 1 + re-acquire bump";
    EXPECT_EQ(grant->end, 9u);

    const auto status_json = a.status();
    ASSERT_TRUE(status_json.has_value());
    const auto snapshot = obs::StatusSnapshot::parse(*status_json);
    ASSERT_TRUE(snapshot.has_value());
    ASSERT_EQ(snapshot->workers.size(), 2u);
    EXPECT_EQ(snapshot->workers[0].frontier, 5u)
        << "the committed frontier must survive the crash";
    srv.stop();
  }

  // A journal from a different sweep shape is a hard error, not a silent
  // restart.
  {
    auto mismatched = base;
    mismatched.jobs = base.jobs - 1;
    exp::LeaseService svc(mismatched);
    EXPECT_THROW(svc.start(), SimulationError);
  }
  std::remove(journal.c_str());
}

TEST(LeaseService, SilentSlotExpiresAdaptivelyAndIsReassigned) {
  const auto journal = temp_path("expiry.journal");
  std::remove(journal.c_str());
  auto opt = service_options(journal, 2);
  opt.timeout.floor_s = 0.3;  // fast expiry for the test
  opt.timeout.multiplier = 2.0;
  // Disable live-tail stealing so the only way B can get A's work is the
  // expiry + reassignment path under test.
  opt.min_steal_jobs = 100;
  ServerThread srv(opt);

  // A seeds the adaptive timeout with fast job walls, then goes silent.
  exp::LeaseClient a(client_options(srv.port(), 0, 2));
  const auto grant_a = a.acquire();
  ASSERT_TRUE(grant_a.has_value());
  std::size_t end = 0;
  for (std::size_t f = 1; f <= 3; ++f)
    ASSERT_EQ(a.commit(grant_a->epoch, f, 60'000, &end),
              exp::LeaseClient::CommitResult::kOk);

  // B drains its own lease, then polls for more work; the only work left
  // is A's — which the adaptive timeout must expire and reassign.
  auto copt_b = client_options(srv.port(), 1, 2);
  copt_b.backoff_base_ms = 20;
  copt_b.backoff_cap_ms = 100;
  exp::LeaseClient b(copt_b);
  const auto grant_b = b.acquire();
  ASSERT_TRUE(grant_b.has_value());
  ASSERT_EQ(b.commit(grant_b->epoch, grant_b->end, 60'000, &end),
            exp::LeaseClient::CommitResult::kOk);

  const auto reassigned = b.next_lease(grant_b->epoch);
  ASSERT_TRUE(reassigned.has_value())
      << "B should eventually take over A's expired lease";
  EXPECT_EQ(reassigned->begin, 3u) << "takeover starts at A's frontier";
  EXPECT_EQ(reassigned->end, grant_a->end);
  EXPECT_GT(reassigned->epoch, grant_a->epoch);

  // The expired holder is fenced on its next write.
  EXPECT_EQ(a.commit(grant_a->epoch, 5, 1000, &end),
            exp::LeaseClient::CommitResult::kFenced);

  srv.stop();
  EXPECT_GE(srv.stats.expirations, 1u);
  EXPECT_GE(srv.stats.reassigns, 1u);
  std::remove(journal.c_str());
}

// ---------------------------------------------------- distributed runs --

TEST(DistributedLease, CleanSweepConvergesToSerialBytes) {
  const auto canonical = temp_path("clean.jsonl");
  const auto journal = temp_path("clean.journal");
  const auto portfile = temp_path("clean.port");
  const auto statsfile = temp_path("clean.stats");
  remove_run_files(canonical, 3);
  std::remove(journal.c_str());
  std::remove(statsfile.c_str());

  const pid_t server = spawn_server(journal, portfile, statsfile, 3,
                                    /*linger_ms=*/300);
  const auto port = wait_for_port(portfile, 10.0);
  ASSERT_TRUE(port.has_value()) << "server never published its port";

  const auto report = run_supervised(canonical, *port, 3, /*resume=*/false);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.planned_jobs, 18u);
  EXPECT_EQ(report.merge.records, 18u);
  EXPECT_EQ(report.orphaned, 0u);
  EXPECT_EQ(report.restarts, 0u);
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));
  EXPECT_EQ(read_file(exp::Checkpoint::default_path(serial_store())),
            read_file(exp::Checkpoint::default_path(canonical)));

  const int status = wait_child(server);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "server should exit 0 after completing + lingering";
  const auto stats = read_stats_file(statsfile);
  EXPECT_EQ(stats.at("completed"), 1);
  EXPECT_EQ(stats.at("fenced"), 0);
  EXPECT_EQ(stats.at("torn_journal_records"), 0);
  EXPECT_GE(stats.at("grants"), 3);

  remove_run_files(canonical, 3);
  std::remove(journal.c_str());
  std::remove(portfile.c_str());
  std::remove(statsfile.c_str());
}

TEST(DistributedLease, SigkilledWorkerIsRespawnedUnderAFreshEpoch) {
  const auto canonical = temp_path("wkill.jsonl");
  const auto journal = temp_path("wkill.journal");
  const auto portfile = temp_path("wkill.port");
  const auto statsfile = temp_path("wkill.stats");
  remove_run_files(canonical, 2);
  std::remove(journal.c_str());
  std::remove(statsfile.c_str());

  const pid_t server = spawn_server(journal, portfile, statsfile, 2,
                                    /*linger_ms=*/300);
  const auto port = wait_for_port(portfile, 10.0);
  ASSERT_TRUE(port.has_value());

  const auto report = run_supervised(
      canonical, *port, 2, /*resume=*/false,
      {"--fault-slot", "1", "--die-after", "2", "--kill", "--marker",
       canonical + ".marker"});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.restarts, 1u);
  EXPECT_EQ(report.orphaned, 0u);
  bool saw_sigkill = false;
  for (const auto& w : report.workers)
    if (w.shard == 1 && w.term_signal == SIGKILL) saw_sigkill = true;
  EXPECT_TRUE(saw_sigkill);
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));

  const int status = wait_child(server);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  const auto stats = read_stats_file(statsfile);
  EXPECT_EQ(stats.at("completed"), 1);
  EXPECT_GE(stats.at("grants"), 3) << "initial 2 grants + respawn re-acquire";

  remove_run_files(canonical, 2);
  std::remove(journal.c_str());
  std::remove(portfile.c_str());
  std::remove(statsfile.c_str());
}

TEST(DistributedLease, ServerSigkillOrphansWorkersThenReplayResumeConverges) {
  const auto canonical = temp_path("skill.jsonl");
  const auto journal = temp_path("skill.journal");
  const auto marker = canonical + ".marker";
  remove_run_files(canonical, 3);
  std::remove(journal.c_str());

  const pid_t server1 = spawn_server(journal, temp_path("skill1.port"),
                                     temp_path("skill1.stats"), 3,
                                     /*linger_ms=*/300);
  const auto port1 = wait_for_port(temp_path("skill1.port"), 10.0);
  ASSERT_TRUE(port1.has_value());

  // Deterministic kill sequence: slot 0's worker dies (SIGKILL fault)
  // after 2 jobs and touches the marker first; the killer thread then
  // SIGKILLs the server — worker death and server death in order. Slot 1
  // stalls past the server's death so the sweep cannot finish; every
  // surviving worker must orphan (exit 3) instead of spinning forever.
  std::thread killer([&] {
    while (!util::file_exists(marker))
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ::kill(server1, SIGKILL);
  });
  const auto failed = run_supervised(
      canonical, *port1, 3, /*resume=*/false,
      {"--fault-slot", "0", "--die-after", "2", "--kill", "--marker", marker,
       "--stall-slot", "1", "--stall-after", "0", "--stall-ms", "2500",
       "--retry-budget", "3", "--op-timeout-ms", "300", "--backoff-base-ms",
       "20", "--backoff-cap-ms", "100"});
  killer.join();
  const int status1 = wait_child(server1);
  EXPECT_TRUE(WIFSIGNALED(status1) && WTERMSIG(status1) == SIGKILL);

  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(failed.merged) << "completeness gate must skip the merge";
  EXPECT_GE(failed.orphaned, 1u)
      << "workers must degrade to the orphaned status, not crash codes";
  EXPECT_GE(failed.restarts, 1u) << "the SIGKILLed worker was respawned";
  EXPECT_FALSE(util::file_exists(canonical));

  // Restart the server on the same journal: replay restores leases,
  // frontiers, and epochs; a fault-free --resume run converges.
  const auto statsfile2 = temp_path("skill2.stats");
  std::remove(statsfile2.c_str());
  const pid_t server2 = spawn_server(journal, temp_path("skill2.port"),
                                     statsfile2, 3, /*linger_ms=*/300);
  const auto port2 = wait_for_port(temp_path("skill2.port"), 10.0);
  ASSERT_TRUE(port2.has_value());

  const auto resumed = run_supervised(canonical, *port2, 3, /*resume=*/true);
  EXPECT_TRUE(resumed.ok()) << resumed.summary();
  EXPECT_EQ(resumed.orphaned, 0u);
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));
  EXPECT_EQ(read_file(exp::Checkpoint::default_path(serial_store())),
            read_file(exp::Checkpoint::default_path(canonical)));

  const int status2 = wait_child(server2);
  EXPECT_TRUE(WIFEXITED(status2) && WEXITSTATUS(status2) == 0);
  const auto stats2 = read_stats_file(statsfile2);
  EXPECT_EQ(stats2.at("completed"), 1);
  EXPECT_GT(stats2.at("replayed_records"), 0)
      << "the second server must have replayed the journal";

  remove_run_files(canonical, 3);
  std::remove(journal.c_str());
  for (const auto& f : {temp_path("skill1.port"), temp_path("skill1.stats"),
                        temp_path("skill2.port"), statsfile2})
    std::remove(f.c_str());
}

// ------------------------------------------------- network fault proxy --

/// A deterministic chaos TCP proxy between a lease client and the
/// server: per-frame it drops, duplicates, delays, or truncates based on
/// a seeded xorshift schedule. Connections are handled one at a time —
/// the lease client holds exactly one connection and reconnects after
/// every failed call, which maps 1:1 onto this accept loop.
class FaultProxy {
 public:
  FaultProxy(std::uint16_t upstream_port, std::uint64_t seed)
      : upstream_{"127.0.0.1", upstream_port}, rng_(seed | 1) {}

  void start() {
    listener_ = util::listen_tcp(util::HostPort{"127.0.0.1", 0});
    port_ = util::local_port(listener_.fd());
    th_ = std::thread([this] { accept_loop(); });
  }

  void stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (th_.joinable()) th_.join();
    listener_.close();
  }

  std::uint16_t port() const { return port_; }
  std::size_t dropped() const { return dropped_.load(); }
  std::size_t duplicated() const { return duplicated_.load(); }
  std::size_t truncated() const { return truncated_.load(); }
  std::size_t forwarded() const { return forwarded_.load(); }

 private:
  void accept_loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      struct pollfd p{};
      p.fd = listener_.fd();
      p.events = POLLIN;
      if (util::poll_retry(&p, 1, 50) <= 0) continue;
      util::Socket client = util::accept_tcp(listener_.fd());
      if (client.valid()) pump(client);
    }
  }

  std::uint64_t roll() {
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return rng_ % 100;
  }

  /// Shuttle frames between one client connection and a fresh upstream
  /// connection until either side dies (the client reconnecting after a
  /// dropped frame lands back in accept_loop).
  void pump(util::Socket& client) {
    util::Socket upstream = util::connect_tcp(
        upstream_, util::NetClock::now() + std::chrono::seconds(1));
    if (!upstream.valid()) return;
    while (!stop_.load(std::memory_order_relaxed)) {
      struct pollfd fds[2] = {};
      fds[0].fd = client.fd();
      fds[0].events = POLLIN;
      fds[1].fd = upstream.fd();
      fds[1].events = POLLIN;
      if (util::poll_retry(fds, 2, 50) <= 0) continue;
      for (int dir = 0; dir < 2; ++dir) {
        if (!(fds[dir].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        const int from = dir == 0 ? client.fd() : upstream.fd();
        const int to = dir == 0 ? upstream.fd() : client.fd();
        const bool to_client = dir == 1;
        const auto frame = util::recv_frame(
            from, util::NetClock::now() + std::chrono::milliseconds(300));
        if (!frame) return;  // closed or wedged: drop the pair
        if (!relay(*frame, to, to_client)) return;
      }
    }
  }

  /// Apply the fault schedule to one frame; false = kill the connection.
  bool relay(const std::string& frame, int to, bool to_client) {
    const auto deadline = util::NetClock::now() + std::chrono::seconds(1);
    const auto verdict = roll();
    if (verdict < 30) {  // drop: the client must retry under backoff
      ++dropped_;
      return true;
    }
    if (verdict < 38) {  // duplicate: the seq filter must discard one
      ++duplicated_;
      return util::send_frame(to, frame, deadline) &&
             util::send_frame(to, frame, deadline);
    }
    if (verdict < 46) {  // delay, still inside the client's deadline
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ++forwarded_;
      return util::send_frame(to, frame, deadline);
    }
    if (verdict < 52) {
      if (to_client) {  // truncate: a torn response, then a dead conn
        ++truncated_;
        const std::uint32_t claimed =
            static_cast<std::uint32_t>(frame.size());
        unsigned char header[4] = {
            static_cast<unsigned char>(claimed & 0xff),
            static_cast<unsigned char>((claimed >> 8) & 0xff),
            static_cast<unsigned char>((claimed >> 16) & 0xff),
            static_cast<unsigned char>((claimed >> 24) & 0xff)};
        (void)::send(to, header, sizeof header, MSG_NOSIGNAL);
        (void)::send(to, frame.data(), frame.size() / 2, MSG_NOSIGNAL);
        return false;
      }
      ++dropped_;  // request direction: truncation behaves like a drop
      return true;
    }
    ++forwarded_;
    return util::send_frame(to, frame, deadline);
  }

  util::HostPort upstream_;
  std::uint64_t rng_;
  util::Socket listener_;
  std::uint16_t port_ = 0;
  std::thread th_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<std::size_t> duplicated_{0};
  std::atomic<std::size_t> truncated_{0};
  std::atomic<std::size_t> forwarded_{0};
};

TEST(DistributedLease, ThirtyPercentFrameDropStillCompletesTheSweep) {
  const auto canonical = temp_path("chaos.jsonl");
  const auto journal = temp_path("chaos.journal");
  remove_run_files(canonical, 1);
  std::remove(journal.c_str());

  auto opt = service_options(journal, 1);
  ServerThread srv(opt);
  FaultProxy proxy(srv.port(), /*seed=*/0x9e3779b97f4a7c15ull);
  proxy.start();

  exp::LeaseWorkerOptions wopt;
  wopt.canonical_out = canonical;
  wopt.slot = 0;
  wopt.slot_count = 1;
  wopt.lease_server = "127.0.0.1:" + std::to_string(proxy.port());
  wopt.op_timeout_ms = 150;
  wopt.retry_budget = 25;
  wopt.backoff_base_ms = 5;
  wopt.backoff_cap_ms = 40;
  const auto report = exp::run_lease_client_worker(fault_sweep(), wopt);

  proxy.stop();
  srv.stop();

  EXPECT_FALSE(report.orphaned)
      << "lossy but live network must not orphan the worker";
  EXPECT_TRUE(report.batch.ok());
  EXPECT_GE(report.leases_run, 1u);
  EXPECT_GT(report.retries, 0u) << "the fault schedule must have bitten";
  EXPECT_GT(proxy.dropped(), 0u);
  EXPECT_TRUE(srv.stats.completed);

  // The slot store holds every record exactly once; merged it is
  // byte-identical to the serial run.
  exp::ShardMerger merger;
  merger.add_store(exp::worker_store_path(canonical, 0, 1));
  const auto merge = merger.merge_to(canonical);
  EXPECT_EQ(merge.records, 18u);
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));

  remove_run_files(canonical, 1);
  std::remove(journal.c_str());
}

// ------------------------------------------------------------ the fleet --

/// Self-exec'd lease worker: rebuild the sweep, wire up the lease client,
/// apply targeted fault hooks, exit with the distinct orphaned status
/// when the server is lost.
int lease_worker_main(int argc, char** argv) {
  std::string out, marker, lease_server;
  std::optional<exp::ShardSpec> slot;
  bool resume = false;
  std::size_t fault_slot = exp::ShardTestHooks::kOff;
  std::size_t stall_slot = exp::ShardTestHooks::kOff;
  exp::ShardTestHooks die_hooks;
  exp::ShardTestHooks stall_hooks;
  exp::LeaseWorkerOptions wopt;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&] { return std::string(i + 1 < argc ? argv[++i] : "0"); };
    if (arg == "--out") {
      out = value();
    } else if (arg == "--worker-slot") {
      slot = exp::ShardSpec::parse(value());
    } else if (arg == "--lease-server") {
      lease_server = value();
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--fault-slot") {
      fault_slot = std::stoul(value());
    } else if (arg == "--die-after") {
      die_hooks.die_after_n_jobs = std::stoul(value());
    } else if (arg == "--kill") {
      die_hooks.die_with_sigkill = true;
    } else if (arg == "--stall-slot") {
      stall_slot = std::stoul(value());
    } else if (arg == "--stall-after") {
      stall_hooks.stall_after_n_jobs = std::stoul(value());
    } else if (arg == "--stall-ms") {
      stall_hooks.stall_ms = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--marker") {
      marker = value();
    } else if (arg == "--retry-budget") {
      wopt.retry_budget = std::stoul(value());
    } else if (arg == "--op-timeout-ms") {
      wopt.op_timeout_ms = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--backoff-base-ms") {
      wopt.backoff_base_ms = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--backoff-cap-ms") {
      wopt.backoff_cap_ms = static_cast<std::uint32_t>(std::stoul(value()));
    }
  }
  if (out.empty() || !slot || lease_server.empty()) return 2;

  wopt.canonical_out = out;
  wopt.slot = slot->index;
  wopt.slot_count = slot->count;
  wopt.merge_resume = resume;
  wopt.lease_server = lease_server;
  if (slot->index == fault_slot) {
    wopt.hooks = die_hooks;
    wopt.hooks.once_marker = marker;
  } else if (slot->index == stall_slot) {
    wopt.hooks = stall_hooks;
  }
  const auto report = exp::run_lease_client_worker(fault_sweep(), wopt);
  if (report.orphaned) return exp::kOrphanedExitCode;
  return report.batch.ok() ? 0 : 1;
}

/// Self-exec'd lease server over fault_sweep(): publishes its ephemeral
/// port atomically, serves until the sweep completes (+linger), and dumps
/// its final stats as key-value lines for the parent test to assert on.
int lease_server_main(int argc, char** argv) {
  std::string journal, portfile, statsfile;
  std::size_t slots = 1;
  std::uint32_t linger_ms = 300;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&] { return std::string(i + 1 < argc ? argv[++i] : "0"); };
    if (arg == "--journal") {
      journal = value();
    } else if (arg == "--portfile") {
      portfile = value();
    } else if (arg == "--statsfile") {
      statsfile = value();
    } else if (arg == "--slots") {
      slots = std::stoul(value());
    } else if (arg == "--linger-ms") {
      linger_ms = static_cast<std::uint32_t>(std::stoul(value()));
    }
  }
  if (journal.empty() || portfile.empty()) return 2;

  exp::LeaseServiceOptions opt;
  opt.jobs = fault_sweep().size();
  opt.slots = slots;
  opt.journal_path = journal;
  opt.poll_ms = 10;
  opt.linger_ms = linger_ms;
  try {
    exp::LeaseService svc(opt);
    svc.start();
    util::write_file_atomic(portfile, std::to_string(svc.port()));
    const auto stats = svc.run();
    if (!statsfile.empty()) {
      std::ostringstream os;
      os << "completed " << (stats.completed ? 1 : 0) << "\n"
         << "grants " << stats.grants << "\n"
         << "steals " << stats.steals << "\n"
         << "reassigns " << stats.reassigns << "\n"
         << "expirations " << stats.expirations << "\n"
         << "fenced " << stats.fenced << "\n"
         << "replayed_records " << stats.replayed_records << "\n"
         << "torn_journal_records " << stats.torn_journal_records << "\n"
         << "client_retries " << stats.client_retries << "\n";
      util::write_file_atomic(statsfile, os.str());
    }
    return stats.completed ? 0 : 1;
  } catch (const SimulationError&) {
    return 2;
  }
}

}  // namespace
}  // namespace oracle

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--lease-worker")
    return oracle::lease_worker_main(argc, argv);
  if (argc > 1 && std::string(argv[1]) == "--lease-server-role")
    return oracle::lease_server_main(argc, argv);
  oracle::g_self = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

#else  // _WIN32: the lease service is POSIX-only; keep the binary valid.

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

#endif
