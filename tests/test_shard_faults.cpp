// Deterministic fault-injection tests for the work-stealing shard
// supervisor (exp::run_sharded_processes with steal=true): worker death by
// SIGKILL and _exit(1), stall detection via the heartbeat monitor,
// auto-restart, lease re-issue to idle workers, restart-budget exhaustion,
// and --resume convergence — all in-process under ctest instead of only in
// the CI kill+resume smoke script.
//
// The binary is its own worker: a custom main() dispatches to
// worker_main() when argv[1] == "--shard-worker", so the supervisor under
// test self-execs *this* test executable. Faults are injected through
// exp::ShardTestHooks, parsed from the worker argv and targeted at one
// slot (`--fault-slot`), with a one-shot marker file so a respawned worker
// runs clean and the run converges.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep.hpp"
#include "exp/exp.hpp"
#include "obs/status.hpp"
#include "util/error.hpp"
#include "util/file_util.hpp"

#if !defined(_WIN32)

#include <unistd.h>

namespace oracle {
namespace {

std::string g_self;  ///< argv[0], for worker self-exec

core::ExperimentConfig small_config() {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:5x5";
  cfg.strategy = "cwn:radius=4,horizon=1";
  cfg.workload = "fib:9";
  cfg.machine.seed = 1;
  return cfg;
}

/// The fixed sweep both the tests and the self-exec'd workers rebuild:
/// 3 (topology) x 3 (strategy) x 2 (seed) = 18 fast jobs.
std::vector<core::ExperimentConfig> fault_sweep() {
  return core::SweepBuilder(small_config())
      .topologies({"grid:5x5", "grid:6x6", "dlm:5:5x5"})
      .strategies({"cwn:radius=4,horizon=1", "gm:hwm=2,lwm=1", "random"})
      .seeds({1, 2})
      .build();
}

/// A slower sweep for the adaptive-heartbeat tests: 6 jobs of ~100ms+
/// each, so every job boundary spans several supervisor poll windows and
/// the heartbeat monitor is guaranteed to observe real inter-job
/// intervals (the fast sweep's jobs can start and finish inside one poll
/// tick, leaving the adaptive timeout unseeded).
std::vector<core::ExperimentConfig> slow_sweep() {
  auto cfg = small_config();
  cfg.workload = "fib:24";
  cfg.topology = "grid:6x6";
  return core::SweepBuilder(cfg)
      .strategies({"cwn:radius=4,horizon=1", "random"})
      .seeds({1, 2, 3})
      .build();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "oracle_faults_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Serial golden store, produced once per process and shared by every
/// test. The pid in the name matters: ctest runs each TEST as its own
/// process, concurrently — a shared path would be remove()d and
/// rewritten under a sibling process mid-comparison.
const std::string& serial_store() {
  static std::string path;
  static std::once_flag once;
  std::call_once(once, [] {
    path = temp_path("serial_golden." + std::to_string(::getpid()) +
                     ".jsonl");
    std::remove(path.c_str());
    std::remove(exp::Checkpoint::default_path(path).c_str());
    exp::BatchOptions opt;
    opt.jsonl_path = path;
    opt.collect = false;
    const auto outcome = exp::run_batch(fault_sweep(), opt);
    ORACLE_REQUIRE(outcome.report.ok(), "serial golden run failed");
  });
  return path;
}

/// Serial golden for the slow sweep (adaptive-heartbeat tests only).
const std::string& slow_serial_store() {
  static std::string path;
  static std::once_flag once;
  std::call_once(once, [] {
    path = temp_path("slow_serial_golden." + std::to_string(::getpid()) +
                     ".jsonl");
    std::remove(path.c_str());
    std::remove(exp::Checkpoint::default_path(path).c_str());
    exp::BatchOptions opt;
    opt.jsonl_path = path;
    opt.collect = false;
    const auto outcome = exp::run_batch(slow_sweep(), opt);
    ORACLE_REQUIRE(outcome.report.ok(), "slow serial golden run failed");
  });
  return path;
}

void remove_steal_files(const std::string& canonical, std::size_t slots) {
  std::remove(canonical.c_str());
  std::remove(exp::Checkpoint::default_path(canonical).c_str());
  std::remove((canonical + ".marker").c_str());
  for (std::size_t k = 0; k < slots; ++k) {
    for (const auto& f :
         {exp::worker_store_path(canonical, k, slots),
          exp::Checkpoint::default_path(
              exp::worker_store_path(canonical, k, slots)),
          exp::worker_lease_path(canonical, k, slots),
          exp::worker_heartbeat_path(canonical, k, slots)})
      std::remove(f.c_str());
  }
}

/// Launch a supervised steal run over fault_sweep(), with optional fault
/// flags replayed onto every worker's command line (the worker applies
/// them only to --fault-slot's slot).
exp::ShardRunReport run_steal(const std::string& canonical,
                              std::size_t workers,
                              const std::vector<std::string>& fault_flags = {},
                              std::uint32_t heartbeat_ms = 0,
                              std::size_t max_restarts = 2,
                              bool resume = false,
                              std::size_t min_steal_jobs = 1,
                              const std::string& status_path = {},
                              bool adaptive_heartbeat = false,
                              bool retry_quarantined = false,
                              bool slow = false) {
  exp::ShardRunOptions sopt;
  sopt.workers = workers;
  sopt.out = canonical;
  sopt.steal = true;
  sopt.heartbeat_ms = heartbeat_ms;
  sopt.adaptive_heartbeat = adaptive_heartbeat;
  sopt.max_restarts = max_restarts;
  sopt.resume = resume;
  sopt.retry_quarantined = retry_quarantined;
  sopt.min_steal_jobs = min_steal_jobs;
  sopt.poll_ms = 10;
  sopt.status_path = status_path;
  sopt.status_interval_ms = 25;  // many rewrites for the atomicity poller
  sopt.exec_path = exp::self_exec_path(g_self);
  sopt.worker_args = {"--shard-worker", "--out", canonical};
  if (slow) {
    sopt.worker_args.push_back("--sweep");
    sopt.worker_args.push_back("slow");
  }
  sopt.worker_args.insert(sopt.worker_args.end(), fault_flags.begin(),
                          fault_flags.end());
  return exp::run_sharded_processes(slow ? slow_sweep() : fault_sweep(), sopt);
}

// ------------------------------------------------------------ fault tests --

TEST(StealSupervisor, MatchesSerialByteIdenticallyIncludingMoreWorkersThanJobs) {
  const auto canonical = temp_path("clean.jsonl");
  for (const std::size_t workers : {3u, 25u}) {  // 25 > 18 jobs: clamped
    remove_steal_files(canonical, 25);
    const auto report = run_steal(canonical, workers);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.planned_jobs, 18u);
    EXPECT_EQ(report.merge.records, 18u);
    EXPECT_EQ(read_file(serial_store()), read_file(canonical));
    EXPECT_EQ(read_file(exp::Checkpoint::default_path(serial_store())),
              read_file(exp::Checkpoint::default_path(canonical)));
  }
  remove_steal_files(canonical, 25);
}

TEST(StealSupervisor, SigkilledWorkerIsAutoRestartedAndConverges) {
  const auto canonical = temp_path("sigkill.jsonl");
  remove_steal_files(canonical, 3);
  const auto report = run_steal(
      canonical, 3,
      {"--fault-slot", "1", "--die-after", "2", "--kill", "--marker",
       canonical + ".marker"});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.restarts, 1u);
  bool saw_sigkill = false;
  for (const auto& w : report.workers)
    if (w.shard == 1 && w.term_signal == SIGKILL) saw_sigkill = true;
  EXPECT_TRUE(saw_sigkill);
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));
  remove_steal_files(canonical, 3);
}

TEST(StealSupervisor, ExitFaultIsAutoRestartedAndConverges) {
  const auto canonical = temp_path("exit1.jsonl");
  remove_steal_files(canonical, 3);
  const auto report = run_steal(
      canonical, 3,
      {"--fault-slot", "0", "--die-after", "3", "--marker",
       canonical + ".marker"});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.restarts, 1u);
  bool saw_exit1 = false;
  for (const auto& w : report.workers)
    if (w.shard == 0 && w.term_signal == 0 && w.exit_code == 1)
      saw_exit1 = true;
  EXPECT_TRUE(saw_exit1);
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));
  remove_steal_files(canonical, 3);
}

TEST(StealSupervisor, StalledWorkerIsReapedByHeartbeatAndConverges) {
  const auto canonical = temp_path("stall.jsonl");
  remove_steal_files(canonical, 3);
  // Slot 2 wedges for 60s after its first job; the 250ms heartbeat must
  // SIGKILL it long before that and the respawn finishes the lease.
  const auto report = run_steal(
      canonical, 3,
      {"--fault-slot", "2", "--stall-after", "1", "--stall-ms", "60000",
       "--marker", canonical + ".marker"},
      /*heartbeat_ms=*/250);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(report.restarts, 1u);
  bool saw_reap = false;
  for (const auto& w : report.workers)
    if (w.shard == 2 && w.term_signal == SIGKILL) saw_reap = true;
  EXPECT_TRUE(saw_reap);
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));
  remove_steal_files(canonical, 3);
}

TEST(StealSupervisor, SlowWorkersTailIsStolenByIdleWorkers) {
  const auto canonical = temp_path("steal.jsonl");
  remove_steal_files(canonical, 3);
  // Slot 0 stalls 1.5s before its very first job (no heartbeat timeout, so
  // it is never killed). The other two workers drain their own leases in
  // milliseconds and must steal slot 0's unclaimed tail instead of idling.
  const auto report = run_steal(
      canonical, 3,
      {"--fault-slot", "0", "--stall-after", "0", "--stall-ms", "1500",
       "--marker", canonical + ".marker"});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(report.steals, 1u);
  EXPECT_EQ(report.restarts, 0u);
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));
  remove_steal_files(canonical, 3);
}

TEST(StealSupervisor, ExhaustedRestartBudgetAbortsThenResumeConverges) {
  const auto canonical = temp_path("budget.jsonl");
  remove_steal_files(canonical, 3);
  // No marker: the fault re-fires on every respawn of slot 1. Stealing is
  // disabled (min_steal_jobs > sweep size) — otherwise the surviving
  // workers would legitimately rescue the dying slot's lease and the run
  // would converge anyway — so a budget of 1 restart cannot finish the
  // lease and the run must abort with the merge skipped and every slot
  // store preserved.
  const auto failed = run_steal(canonical, 3,
                                {"--fault-slot", "1", "--die-after", "2"},
                                /*heartbeat_ms=*/0, /*max_restarts=*/1,
                                /*resume=*/false, /*min_steal_jobs=*/1000);
  EXPECT_FALSE(failed.ok());
  EXPECT_FALSE(failed.merged);
  EXPECT_EQ(failed.restarts, 1u);
  EXPECT_FALSE(util::file_exists(canonical));

  // The fault-free resume re-runs only what is missing and converges to
  // the serial bytes.
  const auto resumed = run_steal(canonical, 3, {}, 0, 2, /*resume=*/true);
  EXPECT_TRUE(resumed.ok()) << resumed.summary();
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));
  remove_steal_files(canonical, 3);
}

TEST(StealSupervisor, StatusFileIsAlwaysACompleteSnapshot) {
  const auto canonical = temp_path("status.jsonl");
  const auto status = canonical + ".status.json";
  remove_steal_files(canonical, 3);
  std::remove(status.c_str());

  // Hammer-read the status file while the supervisor rewrites it every
  // 25ms *and* absorbs a SIGKILLed worker underneath: the tmp+rename
  // contract means every non-empty read must parse as a full snapshot.
  std::atomic<bool> done{false};
  std::size_t reads = 0;
  std::size_t torn = 0;
  std::string first_torn;
  std::thread poller([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string text = read_file(status);
      if (!text.empty()) {
        ++reads;
        if (!obs::StatusSnapshot::parse(text)) {
          if (torn++ == 0) first_torn = text;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const auto report = run_steal(
      canonical, 3,
      {"--fault-slot", "1", "--die-after", "2", "--kill", "--marker",
       canonical + ".marker"},
      /*heartbeat_ms=*/0, /*max_restarts=*/2, /*resume=*/false,
      /*min_steal_jobs=*/1, status);
  done.store(true, std::memory_order_relaxed);
  poller.join();

  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(reads, 0u);
  EXPECT_EQ(torn, 0u) << "first torn status read: " << first_torn;

  const auto final_status = obs::read_status_file(status);
  ASSERT_TRUE(final_status.has_value());
  EXPECT_EQ(final_status->phase, "done");
  EXPECT_EQ(final_status->jobs_total, 18u);
  EXPECT_EQ(final_status->jobs_done, 18u);
  EXPECT_GE(final_status->restarts, 1u);
  EXPECT_EQ(final_status->workers.size(), 3u);
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));
  std::remove(status.c_str());
  remove_steal_files(canonical, 3);
}

TEST(StealSupervisor, PoisonJobIsQuarantinedThenRetryQuarantinedConverges) {
  const auto canonical = temp_path("poison.jsonl");
  const auto qpath = exp::quarantine_path(canonical);
  remove_steal_files(canonical, 3);
  std::remove(qpath.c_str());

  // Job 7 SIGKILLs whichever worker runs it, every time (no marker, no
  // slot guard — steals move it but never save it). After max_restarts
  // deaths on the same content hash the job must be quarantined: recorded
  // in the .quarantine file, skipped by every worker, and the remaining
  // 17 jobs still merge.
  const auto report =
      run_steal(canonical, 3, {"--poison-index", "7"});
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.merge.records, 17u);
  const auto entries = exp::read_quarantine_file(qpath);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].job_index, 7u);

  // --resume --retry-quarantined forgets the verdict; the fault-free
  // re-run executes the poison job and converges to the serial bytes.
  const auto resumed =
      run_steal(canonical, 3, {}, /*heartbeat_ms=*/0, /*max_restarts=*/2,
                /*resume=*/true, /*min_steal_jobs=*/1, /*status_path=*/{},
                /*adaptive_heartbeat=*/false, /*retry_quarantined=*/true);
  EXPECT_TRUE(resumed.ok()) << resumed.summary();
  EXPECT_EQ(resumed.quarantined, 0u);
  EXPECT_EQ(resumed.merge.records, 18u);
  EXPECT_EQ(read_file(serial_store()), read_file(canonical));
  EXPECT_TRUE(exp::read_quarantine_file(qpath).empty());
  remove_steal_files(canonical, 3);
  std::remove(qpath.c_str());
}

TEST(StealSupervisor, AdaptiveHeartbeatReapsWedgedWorkerWithoutTuning) {
  const auto canonical = temp_path("adaptive.jsonl");
  remove_steal_files(canonical, 3);
  // No --heartbeat-ms anywhere: the monitor seeds its timeout from the
  // observed per-job heartbeat pace (~100ms jobs → the adaptive floor, a
  // few seconds) and must reap the 60s wedge long before it resolves.
  const auto report = run_steal(
      canonical, 3,
      {"--fault-slot", "2", "--stall-after", "1", "--stall-ms", "60000",
       "--marker", canonical + ".marker"},
      /*heartbeat_ms=*/0, /*max_restarts=*/2, /*resume=*/false,
      /*min_steal_jobs=*/1, /*status_path=*/{}, /*adaptive_heartbeat=*/true,
      /*retry_quarantined=*/false, /*slow=*/true);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(report.restarts, 1u);
  bool saw_reap = false;
  for (const auto& w : report.workers)
    if (w.shard == 2 && w.term_signal == SIGKILL) saw_reap = true;
  EXPECT_TRUE(saw_reap);
  EXPECT_EQ(read_file(slow_serial_store()), read_file(canonical));
  remove_steal_files(canonical, 3);
}

TEST(StealSupervisor, AdaptiveHeartbeatNeverReapsAHealthySlowWhale) {
  const auto canonical = temp_path("whale.jsonl");
  remove_steal_files(canonical, 3);
  // A 1.2s "whale" job: ~10x slower than its siblings but well inside
  // the adaptive floor. It must be left alone — zero restarts — and the
  // run still converges.
  const auto report = run_steal(
      canonical, 3,
      {"--fault-slot", "1", "--stall-after", "1", "--stall-ms", "1200",
       "--marker", canonical + ".marker"},
      /*heartbeat_ms=*/0, /*max_restarts=*/2, /*resume=*/false,
      /*min_steal_jobs=*/1, /*status_path=*/{}, /*adaptive_heartbeat=*/true,
      /*retry_quarantined=*/false, /*slow=*/true);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.restarts, 0u);
  for (const auto& w : report.workers) EXPECT_NE(w.term_signal, SIGKILL);
  EXPECT_EQ(read_file(slow_serial_store()), read_file(canonical));
  remove_steal_files(canonical, 3);
}

// ------------------------------------------------------------ worker side --

/// The self-exec'd worker: rebuild the sweep, apply targeted fault hooks,
/// and run this slot's lease.
int worker_main(int argc, char** argv) {
  std::string out, marker, sweep_name;
  std::optional<exp::ShardSpec> slot;
  bool resume = false;
  std::size_t fault_slot = exp::ShardTestHooks::kOff;
  std::size_t poison_index = exp::ShardTestHooks::kOff;
  exp::ShardTestHooks hooks;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&] { return std::string(i + 1 < argc ? argv[++i] : "0"); };
    if (arg == "--out") {
      out = value();
    } else if (arg == "--worker-slot") {
      slot = exp::ShardSpec::parse(value());
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--fault-slot") {
      fault_slot = std::stoul(value());
    } else if (arg == "--die-after") {
      hooks.die_after_n_jobs = std::stoul(value());
    } else if (arg == "--kill") {
      hooks.die_with_sigkill = true;
    } else if (arg == "--stall-after") {
      hooks.stall_after_n_jobs = std::stoul(value());
    } else if (arg == "--stall-ms") {
      hooks.stall_ms = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (arg == "--poison-index") {
      poison_index = std::stoul(value());
    } else if (arg == "--sweep") {
      sweep_name = value();
    } else if (arg == "--marker") {
      marker = value();
    }
  }
  if (out.empty() || !slot) return 2;

  exp::LeaseWorkerOptions wopt;
  wopt.canonical_out = out;
  wopt.slot = slot->index;
  wopt.slot_count = slot->count;
  wopt.merge_resume = resume;
  if (slot->index == fault_slot) {
    wopt.hooks = hooks;
    wopt.hooks.once_marker = marker;
  }
  if (poison_index != exp::ShardTestHooks::kOff) {
    // A poison job kills *whichever* worker picks it up, every time — the
    // quarantine scenario — so it is applied to every slot, unguarded.
    wopt.hooks.die_on_job_index = poison_index;
    wopt.hooks.die_with_sigkill = true;
  }
  const auto sweep = sweep_name == "slow" ? slow_sweep() : fault_sweep();
  return exp::run_lease_worker(sweep, wopt).ok() ? 0 : 1;
}

}  // namespace
}  // namespace oracle

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--shard-worker")
    return oracle::worker_main(argc, argv);
  oracle::g_self = argv[0];
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

#else  // _WIN32: the supervisor is POSIX-only; keep the test binary valid.

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}

#endif
