// exp::StoreIndex — the content-hash index behind the resident oracle
// service: build-from-store round-trips against a real batch run,
// incremental append visibility through refresh(), first-wins dedup
// across overlapping stores, torn-tail tolerance (a half-written record
// is invisible until its newline lands), corrupt-line accounting, and
// truncation recovery.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "exp/batch.hpp"
#include "exp/checkpoint.hpp"
#include "exp/job_queue.hpp"
#include "exp/store_index.hpp"

namespace oracle {
namespace {

std::string temp_path(const std::string& name) {
  // Pid-unique: ctest runs each TEST as its own process, concurrently.
  return testing::TempDir() + "oracle_sidx_" + std::to_string(::getpid()) +
         "_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

void append_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << content;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return s;
}

/// A minimal line the index accepts: the writer's `"hash":"<16 hex>"`
/// signature plus a tag so byte-identity checks can tell lines apart.
std::string fake_record(const std::string& hex16, const std::string& tag) {
  return "{\"job\":0,\"hash\":\"" + hex16 + "\",\"tag\":\"" + tag + "\"}";
}

TEST(StoreIndex, BuildFromRealStoreRoundTrips) {
  const auto store = temp_path("real.jsonl");
  std::remove(store.c_str());
  std::remove(exp::Checkpoint::default_path(store).c_str());

  const auto configs = core::SweepBuilder()
                           .topologies({"grid:4x4"})
                           .strategies({"cwn:radius=3,horizon=1", "random"})
                           .workloads({"fib:8"})
                           .seeds({1, 2})
                           .build();
  exp::BatchOptions opt;
  opt.jsonl_path = store;
  opt.collect = false;
  const auto outcome = exp::run_batch(configs, opt);
  ASSERT_TRUE(outcome.report.ok());

  exp::StoreIndex index;
  EXPECT_EQ(index.add_store(store), configs.size());
  EXPECT_EQ(index.size(), configs.size());
  EXPECT_EQ(index.duplicates(), 0u);
  EXPECT_EQ(index.corrupt_lines(), 0u);
  EXPECT_EQ(index.indexed_bytes(), read_file(store).size());

  // Every job's content hash resolves, and fetch_line returns the exact
  // stored bytes — the line at the recorded offset in the file.
  const std::string raw = read_file(store);
  const exp::JobQueue queue(configs);
  for (const auto& job : queue.jobs()) {
    ASSERT_TRUE(index.contains(job.content_hash));
    const auto entry = index.lookup(job.content_hash);
    ASSERT_TRUE(entry.has_value());
    const auto line = index.fetch_line(job.content_hash);
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, raw.substr(entry->offset, entry->length));
    EXPECT_EQ(raw[entry->offset + entry->length], '\n');
  }

  // Re-adding the same path is a refresh, not a duplicate registration.
  EXPECT_EQ(index.add_store(store), 0u);
  EXPECT_EQ(index.store_count(), 1u);
}

TEST(StoreIndex, IncrementalAppendBecomesVisibleOnRefresh) {
  const auto store = temp_path("append.jsonl");
  write_file(store, fake_record("0000000000000001", "a") + "\n" +
                        fake_record("0000000000000002", "b") + "\n");

  exp::StoreIndex index;
  EXPECT_EQ(index.add_store(store), 2u);
  EXPECT_EQ(index.refresh(), 0u);  // nothing new: frontier is at EOF

  append_file(store, fake_record("0000000000000003", "c") + "\n");
  EXPECT_FALSE(index.contains(0x3));
  EXPECT_EQ(index.refresh(), 1u);
  EXPECT_TRUE(index.contains(0x3));
  EXPECT_EQ(index.fetch_line(0x3), fake_record("0000000000000003", "c"));
  // The earlier entries were not rescanned or disturbed.
  EXPECT_EQ(index.fetch_line(0x1), fake_record("0000000000000001", "a"));
  EXPECT_EQ(index.size(), 3u);
}

TEST(StoreIndex, OverlappingStoresKeepFirstOccurrence) {
  const auto a = temp_path("dup_a.jsonl");
  const auto b = temp_path("dup_b.jsonl");
  write_file(a, fake_record("00000000000000aa", "from-a") + "\n");
  write_file(b, fake_record("00000000000000aa", "from-b") + "\n" +
                    fake_record("00000000000000bb", "only-b") + "\n");

  exp::StoreIndex index;
  EXPECT_EQ(index.add_store(a), 1u);
  EXPECT_EQ(index.add_store(b), 1u);  // the shared hash is a duplicate
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.duplicates(), 1u);
  // First registration order wins — matching Aggregator::add_line's
  // first-wins dedup, so cache answers and re-aggregation agree.
  EXPECT_EQ(index.fetch_line(0xaa), fake_record("00000000000000aa", "from-a"));
  EXPECT_EQ(index.fetch_line(0xbb), fake_record("00000000000000bb", "only-b"));

  // A duplicate appended later within one store counts too.
  append_file(b, fake_record("00000000000000aa", "again") + "\n");
  EXPECT_EQ(index.refresh(), 0u);
  EXPECT_EQ(index.duplicates(), 2u);
  EXPECT_EQ(index.fetch_line(0xaa), fake_record("00000000000000aa", "from-a"));
}

TEST(StoreIndex, TornTailIsInvisibleUntilCompleted) {
  const auto store = temp_path("torn.jsonl");
  const std::string full = fake_record("0000000000000010", "whole");
  const std::string torn = fake_record("0000000000000011", "torn");
  // A killed writer left half a record with no newline.
  write_file(store, full + "\n" + torn.substr(0, torn.size() / 2));

  exp::StoreIndex index;
  EXPECT_EQ(index.add_store(store), 1u);
  EXPECT_TRUE(index.contains(0x10));
  EXPECT_FALSE(index.contains(0x11));
  EXPECT_EQ(index.indexed_bytes(), full.size() + 1);

  // Repeated refreshes never advance past the torn tail...
  EXPECT_EQ(index.refresh(), 0u);
  EXPECT_FALSE(index.contains(0x11));

  // ...until the writer finishes the line, at which point exactly the
  // completed record (and anything after it) appears.
  append_file(store, torn.substr(torn.size() / 2) + "\n" +
                         fake_record("0000000000000012", "next") + "\n");
  EXPECT_EQ(index.refresh(), 2u);
  EXPECT_TRUE(index.contains(0x11));
  EXPECT_TRUE(index.contains(0x12));
  EXPECT_EQ(index.fetch_line(0x11), torn);
}

TEST(StoreIndex, CorruptLinesAreCountedAndSkipped) {
  const auto store = temp_path("corrupt.jsonl");
  write_file(store, "not json at all\n" +
                        fake_record("0000000000000020", "good") + "\n" +
                        "{\"hash\":\"tooshort\"}\n");

  exp::StoreIndex index;
  EXPECT_EQ(index.add_store(store), 1u);
  EXPECT_EQ(index.corrupt_lines(), 2u);
  EXPECT_TRUE(index.contains(0x20));
}

TEST(StoreIndex, MissingStoreRegistersAndFillsInLater) {
  const auto store = temp_path("late.jsonl");
  std::remove(store.c_str());

  exp::StoreIndex index;
  EXPECT_EQ(index.add_store(store), 0u);
  EXPECT_EQ(index.store_count(), 1u);

  write_file(store, fake_record("0000000000000030", "late") + "\n");
  EXPECT_EQ(index.refresh(), 1u);
  EXPECT_TRUE(index.contains(0x30));
}

TEST(StoreIndex, TruncatedStoreIsReindexedFromScratch) {
  const auto store = temp_path("trunc.jsonl");
  write_file(store, fake_record("0000000000000040", "one") + "\n" +
                        fake_record("0000000000000041", "two") + "\n");

  exp::StoreIndex index;
  EXPECT_EQ(index.add_store(store), 2u);

  // The store is rewritten shorter (e.g. a fresh run replaced it): stale
  // entries must not survive to serve garbage bytes.
  write_file(store, fake_record("0000000000000042", "new") + "\n");
  index.refresh();
  EXPECT_FALSE(index.contains(0x40));
  EXPECT_FALSE(index.contains(0x41));
  EXPECT_TRUE(index.contains(0x42));
  EXPECT_EQ(index.fetch_line(0x42), fake_record("0000000000000042", "new"));
}

}  // namespace
}  // namespace oracle
