// Tests for ACWN, the baselines, and the strategy factory, plus a
// parameterized cross-strategy property suite (every strategy must conserve
// goals, respect utilization bounds, and be deterministic).

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "lb/acwn.hpp"
#include "lb/baselines.hpp"
#include "lb/strategy.hpp"
#include "machine/machine.hpp"
#include "topo/grid.hpp"
#include "util/error.hpp"
#include "workload/fib.hpp"

namespace oracle::lb {
namespace {

workload::CostModel costs() { return workload::CostModel{100, 40, 40}; }

stats::RunResult run_with(Strategy& strategy, const topo::Topology& topo,
                          const workload::Workload& wl,
                          std::uint64_t seed = 1) {
  machine::MachineConfig cfg;
  cfg.seed = seed;
  machine::Machine m(topo, wl, strategy, cfg);
  return m.run();
}

// --------------------------------------------------------------------------
// ACWN
// --------------------------------------------------------------------------

TEST(Acwn, DegeneratesToCwnWhenDisabled) {
  const topo::Grid2D grid(5, 5, false);
  const workload::FibWorkload wl(11, costs());
  AcwnParams p;
  p.saturation = 0;
  p.redistribute_delta = 0;
  Acwn acwn(p);
  Cwn cwn(p.cwn);
  const auto ra = run_with(acwn, grid, wl, 9);
  const auto rc = run_with(cwn, grid, wl, 9);
  EXPECT_EQ(ra.completion_time, rc.completion_time);
  EXPECT_EQ(ra.goal_transmissions, rc.goal_transmissions);
}

TEST(Acwn, SaturationControlCutsCommunication) {
  // The paper's §5 prediction: with saturation control, fewer goal messages
  // when the system is already fully loaded.
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(13, costs());
  AcwnParams sat;
  sat.saturation = 2;
  sat.redistribute_delta = 0;
  Acwn acwn(sat);
  Cwn cwn(sat.cwn);
  const auto ra = run_with(acwn, grid, wl);
  const auto rc = run_with(cwn, grid, wl);
  EXPECT_LT(ra.goal_transmissions, rc.goal_transmissions);
  EXPECT_EQ(ra.goals_executed, rc.goals_executed);
}

TEST(Acwn, RedistributionRespectsRadiusBudget) {
  const topo::Grid2D grid(6, 6, false);
  const workload::FibWorkload wl(12, costs());
  AcwnParams p;
  p.cwn.radius = 4;
  p.cwn.horizon = 1;
  p.redistribute_delta = 2;
  Acwn acwn(p);
  const auto r = run_with(acwn, grid, wl);
  for (std::size_t h = p.cwn.radius + 1; h < r.goal_hops.buckets(); ++h)
    EXPECT_EQ(r.goal_hops.count(h), 0u);
}

TEST(Acwn, ParamValidation) {
  AcwnParams p;
  p.saturation = -1;
  EXPECT_THROW(Acwn{p}, ConfigError);
}

// --------------------------------------------------------------------------
// Baselines
// --------------------------------------------------------------------------

TEST(WorkStealing, CompletesAndBeatsLocalOnly) {
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(12, costs());
  WorkStealing steal(WorkStealing::Params{});
  LocalOnly local;
  const auto rs = run_with(steal, grid, wl);
  const auto rl = run_with(local, grid, wl);
  EXPECT_EQ(rs.goals_executed, wl.summarize().total_goals);
  EXPECT_GT(rs.speedup, 2.0 * rl.speedup);
}

TEST(WorkStealing, StealsMoveGoalsOneHop) {
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(11, costs());
  WorkStealing steal(WorkStealing::Params{});
  const auto r = run_with(steal, grid, wl);
  // Stolen goals travelled >= 1 hop; most goals stay at 0.
  EXPECT_GT(r.goal_hops.count(0), 0u);
  EXPECT_GT(r.goal_transmissions, 0u);
}

TEST(WorkStealing, ParamValidation) {
  WorkStealing::Params p;
  p.backoff = 0;
  EXPECT_THROW(WorkStealing{p}, ConfigError);
}

TEST(RandomPush, UsesAllNeighborsEventually) {
  const topo::Grid2D grid(3, 3, false);
  const workload::FibWorkload wl(12, costs());
  RandomPush random;
  const auto r = run_with(random, grid, wl);
  int touched = 0;
  for (double u : r.pe_utilization)
    if (u > 0) ++touched;
  EXPECT_GT(touched, 5);
}

TEST(RoundRobinPush, DeterministicWithoutRng) {
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(10, costs());
  RoundRobinPush a, b;
  const auto ra = run_with(a, grid, wl, 1);
  const auto rb = run_with(b, grid, wl, 2);  // different seed, same result
  EXPECT_EQ(ra.completion_time, rb.completion_time);
  EXPECT_EQ(ra.goal_transmissions, rb.goal_transmissions);
}

// --------------------------------------------------------------------------
// Factory
// --------------------------------------------------------------------------

TEST(StrategyFactory, ParsesAllKinds) {
  EXPECT_EQ(make_strategy("cwn")->name(), "cwn(r=9,h=2)");
  EXPECT_EQ(make_strategy("cwn:radius=5,horizon=1")->name(), "cwn(r=5,h=1)");
  EXPECT_EQ(make_strategy("gm:hwm=3,lwm=2,interval=40")->name(),
            "gm(h=3,l=2,i=40)");
  EXPECT_NE(make_strategy("acwn:saturation=4"), nullptr);
  EXPECT_EQ(make_strategy("local")->name(), "local");
  EXPECT_EQ(make_strategy("random")->name(), "random");
  EXPECT_EQ(make_strategy("roundrobin")->name(), "roundrobin");
  EXPECT_EQ(make_strategy("steal:backoff=5")->name(), "steal(b=5)");
}

TEST(StrategyFactory, CaseInsensitiveKeys) {
  EXPECT_EQ(make_strategy("CWN:Radius=4,HORIZON=2")->name(), "cwn(r=4,h=2)");
}

TEST(StrategyFactory, RejectsMalformed) {
  EXPECT_THROW(make_strategy(""), ConfigError);
  EXPECT_THROW(make_strategy("magic"), ConfigError);
  EXPECT_THROW(make_strategy("cwn:radius"), ConfigError);
  EXPECT_THROW(make_strategy("cwn:radius=0"), ConfigError);
  EXPECT_THROW(make_strategy("gm:stagger=maybe"), ConfigError);
}

// --------------------------------------------------------------------------
// Cross-strategy property suite
// --------------------------------------------------------------------------

class StrategyProperties : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategyProperties, ConservesGoalsAndBounds) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:4x4";
  cfg.strategy = GetParam();
  cfg.workload = "fib:11";
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.goals_executed, workload::FibWorkload::tree_size(11));
  EXPECT_GT(r.avg_utilization, 0.0);
  EXPECT_LE(r.avg_utilization, 1.0);
  EXPECT_GE(r.completion_time, r.critical_path);
}

TEST_P(StrategyProperties, DeterministicAcrossRuns) {
  core::ExperimentConfig cfg;
  cfg.topology = "dlm:4:4x4";
  cfg.strategy = GetParam();
  cfg.workload = "dc:1:60";
  cfg.machine.seed = 77;
  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.goal_hops.to_string(), b.goal_hops.to_string());
}

TEST_P(StrategyProperties, WorksOnBusTopology) {
  core::ExperimentConfig cfg;
  cfg.topology = "dlm:5:5x5";
  cfg.strategy = GetParam();
  cfg.workload = "fib:10";
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.goals_executed, workload::FibWorkload::tree_size(10));
}

TEST_P(StrategyProperties, WorksOnHypercube) {
  core::ExperimentConfig cfg;
  cfg.topology = "hypercube:4";
  cfg.strategy = GetParam();
  cfg.workload = "fib:10";
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.goals_executed, workload::FibWorkload::tree_size(10));
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyProperties,
                         ::testing::Values("cwn", "cwn:radius=3,horizon=1",
                                           "gm", "gm:hwm=1,lwm=1",
                                           "acwn", "local", "random",
                                           "roundrobin", "steal"));

}  // namespace
}  // namespace oracle::lb
