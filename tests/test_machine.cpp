// Tests of the machine layer: PE execution semantics, message transport,
// response routing, piggy-backing, sampling, and termination.

#include <gtest/gtest.h>

#include "lb/baselines.hpp"
#include "lb/strategy.hpp"
#include "machine/machine.hpp"
#include "topo/factory.hpp"
#include "topo/grid.hpp"
#include "workload/dc.hpp"
#include "workload/fib.hpp"

namespace oracle::machine {
namespace {

workload::CostModel tiny_costs() { return workload::CostModel{10, 4, 4}; }

MachineConfig default_cfg() {
  MachineConfig cfg;
  cfg.seed = 7;
  return cfg;
}

TEST(Machine, LocalOnlySerializesEverything) {
  const topo::Grid2D grid(3, 3, false);
  const workload::FibWorkload wl(8, tiny_costs());
  lb::LocalOnly strategy;
  Machine m(grid, wl, strategy, default_cfg());
  const stats::RunResult r = m.run();

  const workload::TreeSummary s = wl.summarize();
  // Everything ran on the start PE: completion == sequential work.
  EXPECT_EQ(r.completion_time, s.total_work);
  EXPECT_EQ(r.goals_executed, s.total_goals);
  EXPECT_DOUBLE_EQ(r.pe_utilization[0], 1.0);
  for (std::size_t pe = 1; pe < r.pe_utilization.size(); ++pe)
    EXPECT_DOUBLE_EQ(r.pe_utilization[pe], 0.0);
  EXPECT_NEAR(r.speedup, 1.0, 1e-9);
  // No messages at all.
  EXPECT_EQ(r.goal_transmissions, 0u);
  EXPECT_EQ(r.response_transmissions, 0u);
}

TEST(Machine, WorkConservation) {
  const topo::Grid2D grid(4, 4, false);
  const workload::DcWorkload wl(1, 40, tiny_costs());
  lb::RandomPush strategy;
  Machine m(grid, wl, strategy, default_cfg());
  const stats::RunResult r = m.run();
  const workload::TreeSummary s = wl.summarize();
  EXPECT_EQ(r.total_work, s.total_work);   // busy time == work generated
  EXPECT_EQ(r.goals_executed, s.total_goals);
}

TEST(Machine, CompletionAtLeastCriticalPath) {
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(9, tiny_costs());
  lb::RandomPush strategy;
  Machine m(grid, wl, strategy, default_cfg());
  const stats::RunResult r = m.run();
  EXPECT_GE(r.completion_time, wl.summarize().critical_path);
}

TEST(Machine, UtilizationBounds) {
  const topo::Grid2D grid(3, 3, false);
  const workload::FibWorkload wl(10, tiny_costs());
  lb::RoundRobinPush strategy;
  Machine m(grid, wl, strategy, default_cfg());
  const stats::RunResult r = m.run();
  EXPECT_GT(r.avg_utilization, 0.0);
  EXPECT_LE(r.avg_utilization, 1.0);
  for (double u : r.pe_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-12);
  }
  EXPECT_LE(r.speedup, static_cast<double>(r.num_pes) + 1e-9);
}

TEST(Machine, SingleLeafWorkload) {
  const topo::Grid2D grid(2, 2, false);
  const workload::DcWorkload wl(5, 5, tiny_costs());  // one leaf goal
  lb::LocalOnly strategy;
  Machine m(grid, wl, strategy, default_cfg());
  const stats::RunResult r = m.run();
  EXPECT_EQ(r.goals_executed, 1u);
  EXPECT_EQ(r.completion_time, tiny_costs().leaf_cost);
}

TEST(Machine, SinglePeTopology) {
  const topo::Grid2D grid(1, 1, false);
  const workload::FibWorkload wl(6, tiny_costs());
  lb::RandomPush strategy;  // must degrade gracefully with no neighbors
  Machine m(grid, wl, strategy, default_cfg());
  const stats::RunResult r = m.run();
  EXPECT_EQ(r.goals_executed, wl.summarize().total_goals);
  EXPECT_NEAR(r.avg_utilization, 1.0, 1e-9);
}

TEST(Machine, GoalTransmissionsCountHops) {
  // RandomPush sends every non-root goal exactly one hop.
  const topo::Grid2D grid(3, 3, false);
  const workload::FibWorkload wl(7, tiny_costs());
  lb::RandomPush strategy;
  Machine m(grid, wl, strategy, default_cfg());
  const stats::RunResult r = m.run();
  EXPECT_EQ(r.goal_transmissions, wl.summarize().total_goals);
  EXPECT_DOUBLE_EQ(r.avg_goal_distance, 1.0);
  EXPECT_EQ(r.goal_hops.count(1), wl.summarize().total_goals);
}

TEST(Machine, ResponsesRoutedOverMultipleHops) {
  // Push to a random neighbor on a ring: children land 1 hop away, so each
  // response travels exactly 1 hop, but grandchildren may need longer
  // routes back if pushed around the ring. Use counters as a sanity check.
  const auto ring = topo::make_topology("ring:8");
  const workload::DcWorkload wl(1, 16, tiny_costs());
  lb::RandomPush strategy;
  Machine m(*ring, wl, strategy, default_cfg());
  const stats::RunResult r = m.run();
  // Every non-root goal sends a response (leaf or combine) to a parent on
  // another PE (RandomPush never keeps locally on rings of degree 2).
  EXPECT_GE(r.response_transmissions, wl.summarize().total_goals - 1);
}

TEST(Machine, SamplerProducesTimeSeries) {
  const topo::Grid2D grid(3, 3, false);
  const workload::FibWorkload wl(10, tiny_costs());
  lb::RandomPush strategy;
  MachineConfig cfg = default_cfg();
  cfg.sample_interval = 16;
  Machine m(grid, wl, strategy, cfg);
  const stats::RunResult r = m.run();
  const stats::TimeSeries series = r.utilization_series();
  ASSERT_GT(series.size(), 2u);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_GE(series.value_at(i), 0.0);
    EXPECT_LE(series.value_at(i), 100.0 + 1e-9);
  }
  // Interval-average utilization over the whole run matches the aggregate.
  EXPECT_NEAR(series.mean_value() / 100.0, r.avg_utilization, 0.15);
}

TEST(Machine, StartPeConfigurable) {
  const topo::Grid2D grid(3, 3, false);
  const workload::DcWorkload wl(1, 8, tiny_costs());
  lb::LocalOnly strategy;
  MachineConfig cfg = default_cfg();
  cfg.start_pe = 4;  // center
  Machine m(grid, wl, strategy, cfg);
  const stats::RunResult r = m.run();
  EXPECT_DOUBLE_EQ(r.pe_utilization[4], 1.0);
  EXPECT_DOUBLE_EQ(r.pe_utilization[0], 0.0);
}

TEST(Machine, InvalidStartPeRejected) {
  const topo::Grid2D grid(2, 2, false);
  const workload::FibWorkload wl(3, tiny_costs());
  lb::LocalOnly strategy;
  MachineConfig cfg = default_cfg();
  cfg.start_pe = 99;
  EXPECT_THROW(Machine(grid, wl, strategy, cfg), ConfigError);
}

TEST(Machine, ZeroHopLatencyStillDelivers) {
  const topo::Grid2D grid(3, 3, false);
  const workload::FibWorkload wl(8, tiny_costs());
  lb::RandomPush strategy;
  MachineConfig cfg = default_cfg();
  cfg.hop_latency = 0;
  cfg.ctrl_latency = 0;
  Machine m(grid, wl, strategy, cfg);
  const stats::RunResult r = m.run();
  EXPECT_EQ(r.goals_executed, wl.summarize().total_goals);
}

TEST(Machine, ChannelUtilizationBounded) {
  const topo::Grid2D grid(3, 3, false);
  const workload::FibWorkload wl(11, tiny_costs());
  lb::RandomPush strategy;
  Machine m(grid, wl, strategy, default_cfg());
  const stats::RunResult r = m.run();
  EXPECT_GE(r.avg_channel_utilization, 0.0);
  EXPECT_LE(r.max_channel_utilization, 1.0 + 1e-9);
  EXPECT_LE(r.avg_channel_utilization, r.max_channel_utilization);
}

TEST(Machine, LoadMeasureQueuePlusWaiting) {
  // Smoke test: the alternative load measure runs to completion and
  // produces sane results (behavioural comparison lives in the ablation
  // bench).
  const topo::Grid2D grid(4, 4, false);
  const workload::FibWorkload wl(10, tiny_costs());
  const auto strategy = lb::make_strategy("cwn:radius=5,horizon=1");
  MachineConfig cfg = default_cfg();
  cfg.load_measure = LoadMeasure::QueuePlusWaiting;
  Machine m(grid, wl, *strategy, cfg);
  const stats::RunResult r = m.run();
  EXPECT_EQ(r.goals_executed, wl.summarize().total_goals);
}

}  // namespace
}  // namespace oracle::machine
