// Tests for CSV export and the cartesian SweepBuilder.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/presets.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "stats/csv.hpp"
#include "util/error.hpp"

namespace oracle {
namespace {

stats::RunResult small_run() {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:3x3";
  cfg.strategy = "cwn:radius=3,horizon=1";
  cfg.workload = "fib:9";
  cfg.machine.sample_interval = 25;
  return core::run_experiment(cfg);
}

TEST(Csv, HeaderAndRowColumnCountsMatch) {
  const auto r = small_run();
  const auto count_fields = [](const std::string& line) {
    std::size_t n = 1;
    bool quoted = false;
    for (char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_fields(stats::run_result_csv_header()),
            count_fields(stats::run_result_csv_row(r)));
}

TEST(Csv, RowContainsIdentifiers) {
  const auto r = small_run();
  const std::string row = stats::run_result_csv_row(r);
  EXPECT_NE(row.find("grid-3x3"), std::string::npos);
  EXPECT_NE(row.find("cwn(r=3,h=1)"), std::string::npos);
  EXPECT_NE(row.find("fib-9"), std::string::npos);
}

TEST(Csv, SweepDocumentHasOneRowPerResult) {
  const auto r = small_run();
  const std::string doc = stats::sweep_to_csv({r, r, r});
  std::size_t lines = 0;
  for (char c : doc)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4u);  // header + 3 rows
}

TEST(Csv, SeriesAndHopsExports) {
  const auto r = small_run();
  const std::string series = stats::series_to_csv(r);
  EXPECT_NE(series.find("time,utilization_percent"), std::string::npos);
  EXPECT_GT(series.size(), series.find('\n') + 1);  // at least one sample

  const std::string hops = stats::hops_to_csv(r);
  EXPECT_NE(hops.find("hops,count"), std::string::npos);
}

TEST(Csv, WriteFileRoundTrip) {
  const std::string path = "/tmp/oracle_csv_test.csv";
  stats::write_file(path, "a,b\n1,2\n");
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(Csv, WriteFileBadPathThrows) {
  EXPECT_THROW(stats::write_file("/nonexistent_dir_xyz/file.csv", "x"),
               SimulationError);
}

// --------------------------------------------------------------------------
// SweepBuilder
// --------------------------------------------------------------------------

TEST(SweepBuilder, EmptyBuilderYieldsNothing) {
  core::SweepBuilder b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.build().empty());
}

TEST(SweepBuilder, CartesianProductSize) {
  core::SweepBuilder b;
  b.topologies({"grid:3x3", "grid:4x4"})
      .strategies({"cwn", "gm", "local"})
      .workloads({"fib:7"});
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b.build().size(), 6u);
}

TEST(SweepBuilder, OrderFirstAxisSlowest) {
  core::SweepBuilder b;
  b.topologies({"grid:3x3", "grid:4x4"}).strategies({"cwn", "gm"});
  const auto configs = b.build();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].topology, "grid:3x3");
  EXPECT_EQ(configs[0].strategy, "cwn");
  EXPECT_EQ(configs[1].topology, "grid:3x3");
  EXPECT_EQ(configs[1].strategy, "gm");
  EXPECT_EQ(configs[2].topology, "grid:4x4");
  EXPECT_EQ(configs[2].strategy, "cwn");
}

TEST(SweepBuilder, SeedsAxis) {
  core::SweepBuilder b;
  b.workloads({"fib:7"}).seeds({11, 22, 33});
  const auto configs = b.build();
  ASSERT_EQ(configs.size(), 3u);
  EXPECT_EQ(configs[0].machine.seed, 11u);
  EXPECT_EQ(configs[2].machine.seed, 33u);
}

TEST(SweepBuilder, CustomAxisMutates) {
  core::SweepBuilder b;
  b.workloads({"fib:7"});
  b.axis({{"lat1", [](core::ExperimentConfig& c) { c.machine.hop_latency = 1; }},
          {"lat8", [](core::ExperimentConfig& c) { c.machine.hop_latency = 8; }}});
  const auto configs = b.build();
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(configs[0].machine.hop_latency, 1);
  EXPECT_EQ(configs[1].machine.hop_latency, 8);
}

TEST(SweepBuilder, InheritsBaseConfig) {
  core::ExperimentConfig base;
  base.machine.hop_latency = 5;
  base.machine.seed = 99;
  core::SweepBuilder b(base);
  b.strategies({"cwn"});
  const auto configs = b.build();
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].machine.hop_latency, 5);
  EXPECT_EQ(configs[0].machine.seed, 99u);
}

TEST(SweepBuilder, RejectsEmptyAxes) {
  core::SweepBuilder b;
  EXPECT_THROW(b.topologies({}), ConfigError);
  EXPECT_THROW(b.strategies({}), ConfigError);
  EXPECT_THROW(b.workloads({}), ConfigError);
  EXPECT_THROW(b.seeds({}), ConfigError);
  EXPECT_THROW(b.axis({}), ConfigError);
}

TEST(SweepBuilder, PaperGridReproducesItsRunCount) {
  // 2 programs x 6 sizes x 2 families x 5 sizes x 2 strategies = 240 runs:
  // the paper's experiment plan expressed as a sweep.
  core::SweepBuilder b(core::paper::base_config());
  std::vector<std::string> topos;
  for (const auto& s : core::paper::size_points()) {
    topos.push_back(s.grid_spec);
    topos.push_back(s.dlm_spec);
  }
  std::vector<std::string> workloads = core::paper::fib_specs();
  for (const auto& w : core::paper::dc_specs()) workloads.push_back(w);
  b.topologies(topos).workloads(workloads).strategies({"cwn", "gm"});
  EXPECT_EQ(b.size(), 240u);
}

}  // namespace
}  // namespace oracle
