// Tests for the workload layer: fib/dc tree shapes, synthetic trees,
// burst workloads, the tree summarizer, and the spec factory.

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "workload/dc.hpp"
#include "workload/fib.hpp"
#include "workload/synthetic.hpp"
#include "workload/workload.hpp"

namespace oracle::workload {
namespace {

// --------------------------------------------------------------------------
// Fib
// --------------------------------------------------------------------------

TEST(Fib, ValueIterative) {
  EXPECT_EQ(FibWorkload::fib_value(0), 0u);
  EXPECT_EQ(FibWorkload::fib_value(1), 1u);
  EXPECT_EQ(FibWorkload::fib_value(10), 55u);
  EXPECT_EQ(FibWorkload::fib_value(18), 2584u);
}

TEST(Fib, TreeSizeClosedForm) {
  // 2*fib(n+1) - 1; the paper's six sizes give 41 .. 8361 goals.
  EXPECT_EQ(FibWorkload::tree_size(7), 41u);
  EXPECT_EQ(FibWorkload::tree_size(9), 109u);
  EXPECT_EQ(FibWorkload::tree_size(11), 287u);
  EXPECT_EQ(FibWorkload::tree_size(13), 753u);
  EXPECT_EQ(FibWorkload::tree_size(15), 1973u);
  EXPECT_EQ(FibWorkload::tree_size(18), 8361u);
}

TEST(Fib, SummarizeMatchesClosedForm) {
  for (std::uint32_t n : {0u, 1u, 2u, 7u, 11u}) {
    const FibWorkload w(n);
    const TreeSummary s = w.summarize();
    EXPECT_EQ(s.total_goals, FibWorkload::tree_size(n)) << "fib " << n;
    // Leaves of the fib call tree: fib(n+1) (nodes with a < 2).
    EXPECT_EQ(s.leaf_goals, FibWorkload::fib_value(n + 1)) << "fib " << n;
  }
}

TEST(Fib, ExpansionStructure) {
  const FibWorkload w(5);
  const Expansion root = w.expand(w.root());
  EXPECT_FALSE(root.is_leaf);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].a, 4);
  EXPECT_EQ(root.children[1].a, 3);
  EXPECT_EQ(root.children[0].depth, 1u);

  const Expansion leaf = w.expand(GoalSpec{1, 0, 3});
  EXPECT_TRUE(leaf.is_leaf);
  EXPECT_TRUE(leaf.children.empty());
}

TEST(Fib, CostsApplied) {
  CostModel costs{50, 20, 30};
  const FibWorkload w(4, costs);
  EXPECT_EQ(w.expand(GoalSpec{0, 0, 1}).exec_cost, 50);
  const Expansion inner = w.expand(w.root());
  EXPECT_EQ(inner.exec_cost, 20);
  EXPECT_EQ(inner.combine_cost, 30);
}

TEST(Fib, UnbalancedTree) {
  // The paper: "the fibonacci yields a not-so-well-balanced tree".
  const FibWorkload w(10);
  const TreeSummary s = w.summarize();
  // Height n-1 for fib(n) (leftmost spine), far above log2(size).
  EXPECT_EQ(s.height, 9u);
}

// --------------------------------------------------------------------------
// Dc
// --------------------------------------------------------------------------

TEST(Dc, TreeSizeClosedForm) {
  EXPECT_EQ(DcWorkload::tree_size(1, 21), 41u);
  EXPECT_EQ(DcWorkload::tree_size(1, 55), 109u);
  EXPECT_EQ(DcWorkload::tree_size(1, 144), 287u);
  EXPECT_EQ(DcWorkload::tree_size(1, 377), 753u);
  EXPECT_EQ(DcWorkload::tree_size(1, 987), 1973u);
  EXPECT_EQ(DcWorkload::tree_size(1, 4181), 8361u);
}

TEST(Dc, PaperSizesMatchFibSizes) {
  // The paper chose dc sizes so both programs yield equal tree sizes.
  EXPECT_EQ(DcWorkload::tree_size(1, 21), FibWorkload::tree_size(7));
  EXPECT_EQ(DcWorkload::tree_size(1, 4181), FibWorkload::tree_size(18));
}

TEST(Dc, SummarizeMatchesClosedForm) {
  const DcWorkload w(1, 37);
  const TreeSummary s = w.summarize();
  EXPECT_EQ(s.total_goals, DcWorkload::tree_size(1, 37));
  EXPECT_EQ(s.leaf_goals, 37u);
}

TEST(Dc, BalancedTreeHeight) {
  // dc over 64 leaves: a perfectly balanced split -> height 6.
  const DcWorkload w(1, 64);
  EXPECT_EQ(w.summarize().height, 6u);
}

TEST(Dc, ExpansionSplitsInterval) {
  const DcWorkload w(1, 10);
  const Expansion e = w.expand(w.root());
  ASSERT_EQ(e.children.size(), 2u);
  EXPECT_EQ(e.children[0].a, 1);
  EXPECT_EQ(e.children[0].b, 5);
  EXPECT_EQ(e.children[1].a, 6);
  EXPECT_EQ(e.children[1].b, 10);
}

TEST(Dc, SingletonIsLeaf) {
  const DcWorkload w(3, 3);
  EXPECT_TRUE(w.expand(w.root()).is_leaf);
  EXPECT_EQ(w.summarize().total_goals, 1u);
}

TEST(Dc, RejectsInvertedInterval) {
  EXPECT_THROW(DcWorkload(5, 4), ConfigError);
}

// --------------------------------------------------------------------------
// Synthetic
// --------------------------------------------------------------------------

TEST(Synthetic, DeterministicExpansion) {
  SyntheticParams p;
  p.seed = 42;
  const SyntheticTree a(p), b(p);
  const TreeSummary sa = a.summarize(), sb = b.summarize();
  EXPECT_EQ(sa.total_goals, sb.total_goals);
  EXPECT_EQ(sa.total_work, sb.total_work);
}

TEST(Synthetic, DifferentSeedsDifferentTrees) {
  SyntheticParams p1, p2;
  p1.seed = 1;
  p2.seed = 2;
  const auto s1 = SyntheticTree(p1).summarize();
  const auto s2 = SyntheticTree(p2).summarize();
  EXPECT_NE(s1.total_goals, s2.total_goals);
}

TEST(Synthetic, RespectsDepthCap) {
  SyntheticParams p;
  p.max_depth = 4;
  p.leaf_bias = 0.0;  // never leaf early
  const SyntheticTree w(p);
  const TreeSummary s = w.summarize();
  EXPECT_EQ(s.height, 4u);
  EXPECT_EQ(s.total_goals, 31u);  // full binary tree of depth 4
}

TEST(Synthetic, LeafCostsWithinRange) {
  SyntheticParams p;
  p.max_depth = 6;
  p.leaf_cost_min = 7;
  p.leaf_cost_max = 9;
  const SyntheticTree w(p);
  // Walk and check every leaf cost.
  std::vector<GoalSpec> stack{w.root()};
  while (!stack.empty()) {
    const GoalSpec spec = stack.back();
    stack.pop_back();
    const Expansion e = w.expand(spec);
    if (e.is_leaf) {
      EXPECT_GE(e.exec_cost, 7);
      EXPECT_LE(e.exec_cost, 9);
    } else {
      for (const auto& c : e.children) stack.push_back(c);
    }
  }
}

TEST(Synthetic, BranchingWithinBounds) {
  SyntheticParams p;
  p.branch_min = 2;
  p.branch_max = 4;
  p.max_depth = 6;
  const SyntheticTree w(p);
  std::vector<GoalSpec> stack{w.root()};
  while (!stack.empty()) {
    const GoalSpec spec = stack.back();
    stack.pop_back();
    const Expansion e = w.expand(spec);
    if (!e.is_leaf) {
      EXPECT_GE(e.children.size(), 2u);
      EXPECT_LE(e.children.size(), 4u);
      for (const auto& c : e.children) stack.push_back(c);
    }
  }
}

TEST(Synthetic, RejectsBadParams) {
  SyntheticParams p;
  p.branch_min = 0;
  EXPECT_THROW(SyntheticTree{p}, ConfigError);
  p = SyntheticParams{};
  p.branch_max = 1;  // < branch_min = 2
  EXPECT_THROW(SyntheticTree{p}, ConfigError);
  p = SyntheticParams{};
  p.leaf_bias = 1.5;
  EXPECT_THROW(SyntheticTree{p}, ConfigError);
}

// --------------------------------------------------------------------------
// Burst
// --------------------------------------------------------------------------

TEST(Burst, TreeSizeScalesWithPhases) {
  const auto one = BurstWorkload(1, 4).summarize();
  const auto four = BurstWorkload(4, 4).summarize();
  EXPECT_GT(four.total_goals, 3 * one.total_goals);
}

TEST(Burst, ContainsFullBinaryBursts) {
  // Each phase contributes a full binary tree of depth `width`:
  // at least phases * (2^(width+1) - 1) burst nodes.
  const std::uint32_t phases = 3, width = 5;
  const auto s = BurstWorkload(phases, width).summarize();
  EXPECT_GE(s.total_goals, phases * ((2u << width) - 1));
}

TEST(Burst, DeterministicAcrossInstances) {
  const auto a = BurstWorkload(4, 6, 9).summarize();
  const auto b = BurstWorkload(4, 6, 9).summarize();
  EXPECT_EQ(a.total_goals, b.total_goals);
  EXPECT_EQ(a.total_work, b.total_work);
}

TEST(Burst, ChainsSerializePhases) {
  // The critical path must grow with the phase count (staggering chains).
  const auto p1 = BurstWorkload(1, 5).summarize();
  const auto p4 = BurstWorkload(4, 5).summarize();
  EXPECT_GT(p4.critical_path, p1.critical_path);
}

// --------------------------------------------------------------------------
// Summarize (generic)
// --------------------------------------------------------------------------

TEST(Summarize, WorkAndCriticalPathForTinyTree) {
  CostModel costs{100, 40, 40};
  const FibWorkload w(2, costs);  // root + 2 leaves
  const TreeSummary s = w.summarize();
  EXPECT_EQ(s.total_goals, 3u);
  EXPECT_EQ(s.leaf_goals, 2u);
  EXPECT_EQ(s.total_work, 40 + 40 + 100 + 100);
  // Critical path: split + one leaf + combine.
  EXPECT_EQ(s.critical_path, 40 + 100 + 40);
}

TEST(Summarize, CriticalPathLeqTotalWork) {
  for (const char* spec : {"fib:10", "dc:1:100", "burst:phases=2,width=4"}) {
    const auto w = make_workload(spec);
    const TreeSummary s = w->summarize();
    EXPECT_LE(s.critical_path, s.total_work) << spec;
    EXPECT_GT(s.critical_path, 0) << spec;
  }
}

// --------------------------------------------------------------------------
// Factory
// --------------------------------------------------------------------------

TEST(WorkloadFactory, ParsesAllKinds) {
  EXPECT_EQ(make_workload("fib:7")->name(), "fib-7");
  EXPECT_EQ(make_workload("dc:1:21")->name(), "dc-1-21");
  EXPECT_NE(make_workload("synthetic:seed=3,depth=5"), nullptr);
  EXPECT_NE(make_workload("burst:phases=2,width=3"), nullptr);
}

TEST(WorkloadFactory, CostSuffixOverrides) {
  const auto w = make_workload("fib:5;leaf=9,split=3,combine=4");
  const Expansion leaf = w->expand(GoalSpec{0, 0, 1});
  EXPECT_EQ(leaf.exec_cost, 9);
  const Expansion inner = w->expand(w->root());
  EXPECT_EQ(inner.exec_cost, 3);
  EXPECT_EQ(inner.combine_cost, 4);
}

TEST(WorkloadFactory, RejectsMalformed) {
  EXPECT_THROW(make_workload(""), ConfigError);
  EXPECT_THROW(make_workload("fib"), ConfigError);
  EXPECT_THROW(make_workload("fib:99"), ConfigError);
  EXPECT_THROW(make_workload("dc:5"), ConfigError);
  EXPECT_THROW(make_workload("quicksort:10"), ConfigError);
  EXPECT_THROW(make_workload("fib:5;leaf=-3"), ConfigError);
}

}  // namespace
}  // namespace oracle::workload
