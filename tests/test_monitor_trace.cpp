// Tests for the load monitor (per-PE utilization frames), the machine
// trace facility, and the message-size channel model.

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "lb/strategy.hpp"
#include "machine/machine.hpp"
#include "machine/trace.hpp"
#include "stats/load_monitor.hpp"
#include "stats/metrics_recorder.hpp"
#include "topo/grid.hpp"
#include "workload/fib.hpp"

namespace oracle {
namespace {

/// Record utilization frames through the columnar recorder API.
stats::MetricsRecorder record_frames(
    std::uint32_t num_pes,
    const std::vector<std::pair<sim::SimTime, std::vector<double>>>& frames) {
  stats::MetricsRecorder rec;
  rec.reserve(num_pes, frames.size());
  for (const auto& [t, util] : frames) {
    const auto ref = rec.begin_frame(t);
    for (std::uint32_t pe = 0; pe < num_pes; ++pe)
      ref.utilization[pe] = util[pe];
  }
  return rec;
}

// --------------------------------------------------------------------------
// LoadMonitor (view over MetricsRecorder frame columns)
// --------------------------------------------------------------------------

TEST(LoadMonitor, AddAndAccessFrames) {
  const auto rec =
      record_frames(4, {{10, {0.0, 0.5, 1.0, 0.25}}, {20, {1.0, 1.0, 0.0, 0.0}}});
  const stats::LoadMonitor m(rec);
  EXPECT_EQ(m.frames(), 2u);
  EXPECT_EQ(m.time_of(1), 20);
  EXPECT_DOUBLE_EQ(m.frame(0)[2], 1.0);
  EXPECT_EQ(m.pe_series(1), (std::vector<double>{0.5, 1.0}));
}

TEST(LoadMonitor, ShadeRampMonotone) {
  char prev = stats::LoadMonitor::shade(0.0);
  for (double u = 0.05; u <= 1.0; u += 0.05) {
    const char c = stats::LoadMonitor::shade(u);
    (void)prev;
    prev = c;
  }
  EXPECT_EQ(stats::LoadMonitor::shade(0.0), '.');
  EXPECT_EQ(stats::LoadMonitor::shade(1.0), '@');
  EXPECT_EQ(stats::LoadMonitor::shade(2.0), '@');   // clamped
  EXPECT_EQ(stats::LoadMonitor::shade(-1.0), '.');  // clamped
}

TEST(LoadMonitor, RenderFrameShape) {
  const auto rec = record_frames(6, {{5, {0, 0, 0, 1, 1, 1}}});
  const std::string grid = rec.load_monitor().render_frame(0, 2, 3);
  EXPECT_EQ(grid, "...\n@@@\n");
}

TEST(LoadMonitor, MachineFillsMonitorWhenEnabled) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:3x3";
  cfg.strategy = "cwn:radius=3,horizon=1";
  cfg.workload = "fib:11";
  cfg.machine.sample_interval = 40;
  cfg.machine.monitor_per_pe = true;
  const auto r = core::run_experiment(cfg);
  const stats::LoadMonitor monitor = r.load_monitor();
  ASSERT_GT(monitor.frames(), 1u);
  EXPECT_EQ(monitor.num_pes(), 9u);
  for (std::size_t f = 0; f < monitor.frames(); ++f) {
    for (double u : monitor.frame(f)) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0 + 1e-9);
    }
  }
  // Frame means should agree with the aggregate series (same sampling).
  const auto ts = r.utilization_series();
  ASSERT_EQ(ts.size(), monitor.frames());
  for (std::size_t f = 0; f < ts.size(); ++f) {
    double sum = 0;
    for (double u : monitor.frame(f)) sum += u;
    EXPECT_NEAR(sum / 9.0 * 100.0, ts.value_at(f), 1e-6) << "frame " << f;
  }
  // Queue depths are sampled alongside utilization in the same columns.
  for (std::size_t f = 0; f < monitor.frames(); ++f) {
    for (std::int64_t q : r.metrics.queue_depth_frame(f)) EXPECT_GE(q, 0);
  }
}

TEST(LoadMonitor, DisabledByDefault) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:3x3";
  cfg.workload = "fib:8";
  cfg.machine.sample_interval = 40;
  const auto r = core::run_experiment(cfg);
  EXPECT_TRUE(r.load_monitor().empty());
}

// --------------------------------------------------------------------------
// Trace
// --------------------------------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  machine::Trace t(0);
  EXPECT_FALSE(t.enabled());
  t.record(1, machine::TraceEvent::GoalSent, 0, 1, 5, 1);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, CapacityBounds) {
  machine::Trace t(3);
  for (int i = 0; i < 10; ++i)
    t.record(i, machine::TraceEvent::GoalKept, 0, 1, 1, 0);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_TRUE(t.full());
}

TEST(Trace, FilterByEvent) {
  machine::Trace t(10);
  t.record(1, machine::TraceEvent::GoalSent, 0, 1, 1, 1);
  t.record(2, machine::TraceEvent::GoalKept, 0, 1, 1, 1);
  t.record(3, machine::TraceEvent::GoalSent, 1, 2, 2, 2);
  EXPECT_EQ(t.filter(machine::TraceEvent::GoalSent).size(), 2u);
  EXPECT_EQ(t.filter(machine::TraceEvent::RootCompleted).size(), 0u);
}

TEST(Trace, RecordRendering) {
  machine::TraceRecord rec{7, machine::TraceEvent::GoalSent, 2, 3, 11, 4};
  const std::string s = rec.to_string();
  EXPECT_NE(s.find("t=7"), std::string::npos);
  EXPECT_NE(s.find("goal-sent"), std::string::npos);
  EXPECT_NE(s.find("from=2"), std::string::npos);
  EXPECT_NE(s.find("goal=11"), std::string::npos);
}

TEST(Trace, MachineTraceTellsTheGoalStory) {
  const topo::Grid2D grid(3, 3, false);
  const workload::FibWorkload wl(6, workload::CostModel{10, 4, 4});
  const auto strategy = lb::make_strategy("cwn:radius=3,horizon=1");
  machine::MachineConfig mc;
  mc.trace_capacity = 100000;
  machine::Machine m(grid, wl, *strategy, mc);
  const auto r = m.run();
  const auto& trace = m.trace();

  // Every goal in the tree was created and executed exactly once.
  EXPECT_EQ(trace.filter(machine::TraceEvent::GoalCreated).size(),
            r.goals_executed);
  EXPECT_EQ(trace.filter(machine::TraceEvent::GoalExecuted).size(),
            r.goals_executed);
  // Keeps == creations (each goal settles exactly once under CWN).
  EXPECT_EQ(trace.filter(machine::TraceEvent::GoalKept).size(),
            r.goals_executed);
  // Sent count matches the transmission counter.
  EXPECT_EQ(trace.filter(machine::TraceEvent::GoalSent).size(),
            r.goal_transmissions);
  // Exactly one completion, recorded last.
  const auto done = trace.filter(machine::TraceEvent::RootCompleted);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].time, r.completion_time);
}

// --------------------------------------------------------------------------
// Message-size channel model
// --------------------------------------------------------------------------

TEST(WordTimeModel, ZeroWordTimeMatchesFixedLatency) {
  core::ExperimentConfig a, b;
  for (auto* cfg : {&a, &b}) {
    cfg->topology = "grid:4x4";
    cfg->strategy = "cwn";
    cfg->workload = "fib:10";
  }
  b.machine.word_time = 0;  // explicit default
  const auto ra = core::run_experiment(a);
  const auto rb = core::run_experiment(b);
  EXPECT_EQ(ra.completion_time, rb.completion_time);
}

TEST(WordTimeModel, LargerGoalsSlowCommunication) {
  core::ExperimentConfig small, large;
  for (auto* cfg : {&small, &large}) {
    cfg->topology = "grid:4x4";
    cfg->strategy = "cwn";
    cfg->workload = "fib:12";
    cfg->machine.word_time = 1;
  }
  small.machine.goal_msg_size = 2;
  large.machine.goal_msg_size = 64;
  const auto rs = core::run_experiment(small);
  const auto rl = core::run_experiment(large);
  EXPECT_GT(rl.completion_time, rs.completion_time);
  EXPECT_GT(rl.max_channel_utilization, rs.max_channel_utilization);
}

TEST(WordTimeModel, ControlTrafficStaysCheap) {
  // ctrl size 1 vs goal size 8: GM's word-time-weighted channels should
  // still complete, and control messages must not dominate.
  core::ExperimentConfig cfg;
  cfg.topology = "grid:4x4";
  cfg.strategy = "gm";
  cfg.workload = "fib:11";
  cfg.machine.word_time = 2;
  const auto r = core::run_experiment(cfg);
  EXPECT_EQ(r.goals_executed, workload::FibWorkload::tree_size(11));
}

}  // namespace
}  // namespace oracle
