// Observability-layer tests: tracer buffering and zero-cost-off behavior,
// Chrome-trace serialization and balanced span nesting, deterministic
// multi-file merge (including a killed worker's torn tail), status-file
// round-trips, per-job wall-time statistics, and the progress ticker's
// TTY/non-TTY rendering.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "exp/executor.hpp"
#include "exp/job_queue.hpp"
#include "exp/result_sink.hpp"
#include "obs/json_lint.hpp"
#include "obs/status.hpp"
#include "obs/trace.hpp"

namespace oracle {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Scoped tracer enable: tests must never leak an enabled tracer into
/// other tests of this binary (it is process-global).
struct ScopedTracer {
  explicit ScopedTracer(std::uint32_t pid, const char* name,
                        std::size_t capacity = 1 << 12) {
    obs::Tracer::enable(pid, name, capacity);
  }
  ~ScopedTracer() { obs::Tracer::disable(); }
};

std::vector<core::ExperimentConfig> tiny_sweep(std::size_t seeds) {
  core::ExperimentConfig base = core::paper::base_config();
  base.topology = "grid:3x3";
  base.workload = "fib:8";
  core::SweepBuilder sweep(base);
  sweep.strategies({"random"});
  std::vector<std::uint64_t> seed_list;
  for (std::uint64_t s = 1; s <= seeds; ++s) seed_list.push_back(s);
  sweep.seeds(seed_list);
  return sweep.build();
}

// ------------------------------------------------------------ Tracer core --

TEST(Tracer, DisabledTracerBuffersNothing) {
  ASSERT_FALSE(obs::Tracer::enabled());
  {
    obs::Span span("test", "noop", "arg", 1);
    obs::instant("test", "tick");
    obs::counter("test", "count", "value", 42);
  }
  EXPECT_EQ(obs::Tracer::buffered(), 0u);
  EXPECT_EQ(obs::Tracer::dropped(), 0u);
}

TEST(Tracer, SpansInstantsAndCountersAreBuffered) {
  ScopedTracer tracer(0, "test");
  {
    obs::Span outer("test", "outer", "idx", 7);
    obs::Span inner("test", "inner");
    obs::instant("test", "mark", "slot", 3);
    obs::counter("test", "gauge", "value", 10);
  }
  EXPECT_EQ(obs::Tracer::buffered(), 4u);
  obs::Tracer::clear();
  EXPECT_EQ(obs::Tracer::buffered(), 0u);
}

TEST(Tracer, OverflowDropsInsteadOfGrowing) {
  ScopedTracer tracer(0, "test", /*capacity=*/16);  // 16 = enable()'s floor
  for (int i = 0; i < 48; ++i) obs::instant("test", "tick");
  EXPECT_EQ(obs::Tracer::buffered(), 16u);
  EXPECT_EQ(obs::Tracer::dropped(), 32u);
}

TEST(Tracer, EventLineRoundTrips) {
  obs::TraceEvent ev;
  ev.name = "job";
  ev.cat = "exec";
  ev.ph = 'X';
  ev.ts_ns = 123'456'789;
  ev.dur_ns = 42'000;
  ev.arg0_name = "index";
  ev.arg0 = 9;
  const std::string line = obs::event_to_json_line(ev, /*pid=*/2, /*tid=*/5);
  EXPECT_TRUE(obs::json_valid(line));

  const auto parsed = obs::parse_event_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, "job");
  EXPECT_EQ(parsed->ph, 'X');
  EXPECT_NEAR(parsed->ts_us, 123'456.789, 1e-6);
  EXPECT_NEAR(parsed->dur_us, 42.0, 1e-6);
  EXPECT_EQ(parsed->pid, 2);
  EXPECT_EQ(parsed->tid, 5);
}

TEST(Tracer, CorruptLinesParseToNothing) {
  EXPECT_FALSE(obs::parse_event_line("").has_value());
  EXPECT_FALSE(obs::parse_event_line("{\"name\":\"torn").has_value());
  EXPECT_FALSE(obs::parse_event_line("not json at all").has_value());
}

// --------------------------------------------------- traced executor runs --

/// Partial-overlap check: within one (pid, tid) track, any two complete
/// events must be disjoint or strictly nested — the invariant RAII spans
/// on one thread guarantee, and the one Perfetto needs to draw a stack.
bool spans_nest(std::vector<obs::ParsedEvent> spans) {
  std::sort(spans.begin(), spans.end(),
            [](const obs::ParsedEvent& a, const obs::ParsedEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // enclosing span first
            });
  for (std::size_t i = 0; i + 1 < spans.size(); ++i) {
    const double a_end = spans[i].ts_us + spans[i].dur_us;
    const auto& b = spans[i + 1];
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const auto& s = spans[j];
      if (s.ts_us >= a_end) break;  // disjoint from a, and from a's tail
      if (s.ts_us + s.dur_us > a_end + 1e-3) return false;  // partial overlap
    }
    (void)b;
  }
  return true;
}

TEST(TracedExecutor, TraceIsValidJsonWithBalancedNesting) {
  const auto configs = tiny_sweep(4);
  const std::string trace = temp_path("exec.trace.json");

  {
    ScopedTracer tracer(0, "test_exec");
    exp::JobQueue queue(configs);
    exp::MemorySink sink;
    exp::ExecutorOptions opts;
    opts.workers = 2;
    exp::Executor executor(opts);
    const auto report = executor.run(queue, sink);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report.executed, configs.size());
    ASSERT_EQ(obs::Tracer::write_json(trace), obs::Tracer::buffered());
  }

  const std::string doc = slurp(trace);
  std::string error;
  EXPECT_TRUE(obs::json_valid(doc, &error)) << error;

  // Re-read the document line-wise: one event object per line by
  // construction, so the line parser doubles as the event extractor.
  std::istringstream in(doc);
  std::string line;
  std::size_t job_spans = 0;
  std::map<std::pair<std::int64_t, std::int64_t>,
           std::vector<obs::ParsedEvent>>
      tracks;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == ',') line.pop_back();  // array joins
    const auto ev = obs::parse_event_line(line);
    if (!ev) continue;  // the {"traceEvents":[ scaffolding
    if (ev->name == "job" && ev->ph == 'X') ++job_spans;
    if (ev->ph == 'X') tracks[{ev->pid, ev->tid}].push_back(*ev);
  }
  EXPECT_EQ(job_spans, configs.size());
  for (auto& [track, spans] : tracks)
    EXPECT_TRUE(spans_nest(spans))
        << "partial span overlap on pid " << track.first << " tid "
        << track.second;
  std::remove(trace.c_str());
}

TEST(TracedExecutor, EngineCountersAreSampled) {
  ScopedTracer tracer(0, "test_counters");
  (void)core::run_experiment(tiny_sweep(1).front());
  const std::string path = temp_path("counters.trace");
  ASSERT_GT(obs::Tracer::write_event_lines(path, /*append=*/false), 0u);

  const std::string text = slurp(path);
  EXPECT_NE(text.find("engine.events"), std::string::npos);
  EXPECT_NE(text.find("engine.cancels"), std::string::npos);
  EXPECT_NE(text.find("engine.sched"), std::string::npos);
  EXPECT_NE(text.find("engine.msg_pool_reused"), std::string::npos);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- trace merge --

TEST(TraceMerge, DeterministicAcrossRunsAndTolerantOfTornTails) {
  const std::string base = temp_path("merge.trace.json");
  const std::string parent = obs::parent_trace_path(base);
  const std::string w0 = obs::worker_trace_path(base, 0, 2);
  const std::string w1 = obs::worker_trace_path(base, 1, 2);

  auto line = [](const char* name, char ph, std::int64_t ts_ns,
                 std::uint32_t pid) {
    obs::TraceEvent ev;
    ev.name = name;
    ev.cat = "test";
    ev.ph = ph;
    ev.ts_ns = ts_ns;
    ev.dur_ns = ph == 'X' ? 500 : 0;
    return obs::event_to_json_line(ev, pid, 1);
  };

  {
    std::ofstream p(parent);
    p << line("steal", 'i', 5'000, 0) << "\n";
    p << line("spawn", 'i', 1'000, 0) << "\n";
  }
  {
    // Overlapping stolen range: both workers ran the same job index at
    // overlapping times on their own tracks — the merge must keep both.
    std::ofstream f(w0);
    f << line("job", 'X', 2'000, 1) << "\n";
    f << line("job", 'X', 6'000, 1) << "\n";
    f << "{\"name\":\"job\",\"cat\":\"test\",\"ph\":\"X\",\"ts\":9.0";  // torn
  }
  {
    std::ofstream f(w1);
    f << line("job", 'X', 6'200, 2) << "\n";
  }

  const auto discovered = obs::discover_trace_files(base);
  ASSERT_EQ(discovered.size(), 3u);
  EXPECT_EQ(discovered[0], parent);  // parent first, then slot order
  EXPECT_EQ(discovered[1], w0);
  EXPECT_EQ(discovered[2], w1);

  const std::string out_a = temp_path("merged_a.json");
  const std::string out_b = temp_path("merged_b.json");
  const auto report_a = obs::merge_trace_files(discovered, out_a);
  const auto report_b = obs::merge_trace_files(discovered, out_b);
  EXPECT_EQ(report_a.files_read, 3u);
  EXPECT_EQ(report_a.events, 5u);
  EXPECT_EQ(report_a.corrupt_lines, 1u);
  EXPECT_EQ(report_b.events, report_a.events);

  const std::string doc_a = slurp(out_a);
  EXPECT_EQ(doc_a, slurp(out_b));  // byte-deterministic merge
  std::string error;
  EXPECT_TRUE(obs::json_valid(doc_a, &error)) << error;

  // Events must come out sorted by timestamp: spawn < job < steal < ...
  EXPECT_LT(doc_a.find("spawn"), doc_a.find("steal"));

  for (const auto& f : {parent, w0, w1, out_a, out_b})
    std::remove(f.c_str());
}

TEST(TraceMerge, MissingInputsAreSkipped) {
  const std::string out = temp_path("merged_none.json");
  const auto report =
      obs::merge_trace_files({temp_path("nope.trace.json.parent")}, out);
  EXPECT_EQ(report.files_read, 0u);
  EXPECT_EQ(report.events, 0u);
  EXPECT_TRUE(obs::json_valid(slurp(out)));
  std::remove(out.c_str());
}

TEST(TraceMerge, WorkerAppendSurvivesRespawn) {
  // A respawned slot appends to the same file: both generations' events
  // must survive in one merged timeline.
  const std::string base = temp_path("respawn.trace.json");
  const std::string w0 = obs::worker_trace_path(base, 0, 1);
  {
    ScopedTracer tracer(1, "worker 0");
    obs::instant("test", "gen0");
    ASSERT_GT(obs::Tracer::write_event_lines(w0, /*append=*/true), 0u);
  }
  {
    ScopedTracer tracer(1, "worker 0");
    obs::instant("test", "gen1");
    ASSERT_GT(obs::Tracer::write_event_lines(w0, /*append=*/true), 0u);
  }
  const std::string out = temp_path("respawn_merged.json");
  (void)obs::merge_trace_files({w0}, out);
  const std::string doc = slurp(out);
  EXPECT_NE(doc.find("gen0"), std::string::npos);
  EXPECT_NE(doc.find("gen1"), std::string::npos);
  EXPECT_TRUE(obs::json_valid(doc));
  std::remove(w0.c_str());
  std::remove(out.c_str());
}

// ------------------------------------------------------------ status file --

TEST(StatusFile, SnapshotRoundTrips) {
  obs::StatusSnapshot st;
  st.phase = "running";
  st.jobs_total = 120;
  st.jobs_done = 37;
  st.jobs_per_second = 12.5;
  st.eta_seconds = 6.64;
  st.elapsed_seconds = 2.96;
  st.steals = 3;
  st.restarts = 1;
  st.requests = 9;
  st.cache_hits = 5;
  st.connections = 4;
  st.queue_depth = 2;
  st.in_flight = 1;
  st.evicted = 1;
  st.workers.push_back({0, true, 0, 60, 37, 1, 0.25});
  st.workers.push_back({1, false, 60, 120, 120, 0, -1.0});

  const std::string json = st.to_json();
  EXPECT_TRUE(obs::json_valid(json));

  const auto parsed = obs::StatusSnapshot::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->phase, "running");
  EXPECT_EQ(parsed->jobs_total, 120u);
  EXPECT_EQ(parsed->jobs_done, 37u);
  EXPECT_NEAR(parsed->jobs_per_second, 12.5, 1e-3);
  EXPECT_NEAR(parsed->eta_seconds, 6.64, 1e-3);
  EXPECT_EQ(parsed->steals, 3u);
  EXPECT_EQ(parsed->restarts, 1u);
  EXPECT_EQ(parsed->requests, 9u);
  EXPECT_EQ(parsed->cache_hits, 5u);
  EXPECT_EQ(parsed->connections, 4u);
  EXPECT_EQ(parsed->queue_depth, 2u);
  EXPECT_EQ(parsed->in_flight, 1u);
  EXPECT_EQ(parsed->evicted, 1u);
  ASSERT_EQ(parsed->workers.size(), 2u);
  EXPECT_EQ(parsed->workers[0].slot, 0u);
  EXPECT_TRUE(parsed->workers[0].live);
  EXPECT_EQ(parsed->workers[0].frontier, 37u);
  EXPECT_NEAR(parsed->workers[0].heartbeat_age_s, 0.25, 1e-3);
  EXPECT_FALSE(parsed->workers[1].live);
  EXPECT_EQ(parsed->workers[1].lease_end, 120u);
}

TEST(StatusFile, WriteAndReadBack) {
  const std::string path = temp_path("status.json");
  obs::StatusSnapshot st;
  st.phase = "done";
  st.jobs_total = 4;
  st.jobs_done = 4;
  obs::write_status_file(path, st);
  const auto back = obs::read_status_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->phase, "done");
  EXPECT_EQ(back->jobs_done, 4u);
  EXPECT_TRUE(obs::json_valid(slurp(path)));
  std::remove(path.c_str());
}

TEST(StatusFile, MalformedInputRejected) {
  EXPECT_FALSE(obs::StatusSnapshot::parse("").has_value());
  EXPECT_FALSE(obs::StatusSnapshot::parse("{\"v\":99}").has_value());
  EXPECT_FALSE(
      obs::StatusSnapshot::parse("{\"v\":1,\"phase\":\"x\"}").has_value());
}

// -------------------------------------------------------------- json lint --

TEST(JsonLint, AcceptsValidDocuments) {
  EXPECT_TRUE(obs::json_valid("{}"));
  EXPECT_TRUE(obs::json_valid("[1,2.5,-3e4,\"a\\n\\u00e9\",true,null]"));
  EXPECT_TRUE(obs::json_valid("{\"a\":{\"b\":[{}]}}"));
}

TEST(JsonLint, RejectsInvalidDocuments) {
  std::string error;
  EXPECT_FALSE(obs::json_valid("", &error));
  EXPECT_FALSE(obs::json_valid("{", &error));
  EXPECT_FALSE(obs::json_valid("{\"a\":1,}", &error));
  EXPECT_FALSE(obs::json_valid("[1] trailing", &error));
  EXPECT_FALSE(obs::json_valid("{\"a\":01}", &error));
  EXPECT_FALSE(obs::json_valid("\"unterminated", &error));
}

// ---------------------------------------------------------- DurationStats --

TEST(DurationStats, PercentilesOverKnownSamples) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i / 1000.0);  // 1..100ms
  const auto d = exp::DurationStats::from_samples(samples);
  EXPECT_EQ(d.count, 100u);
  EXPECT_NEAR(d.min_s, 0.001, 1e-9);
  EXPECT_NEAR(d.max_s, 0.100, 1e-9);
  EXPECT_NEAR(d.mean_s, 0.0505, 1e-9);
  EXPECT_NEAR(d.p50_s, 0.051, 1e-6);
  EXPECT_NEAR(d.p95_s, 0.095, 1e-6);
  EXPECT_NEAR(d.p99_s, 0.099, 1e-6);
  EXPECT_NE(d.summary().find("n=100"), std::string::npos);
}

TEST(DurationStats, EmptyIsWellDefined) {
  const auto d = exp::DurationStats::from_samples({});
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.summary(), "job wall: n/a");
}

TEST(DurationStats, ReportedByExecutor) {
  const auto configs = tiny_sweep(3);
  exp::JobQueue queue(configs);
  exp::MemorySink sink;
  exp::ExecutorOptions opts;
  opts.workers = 1;
  exp::Executor executor(opts);
  const auto report = executor.run(queue, sink);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.job_wall.count, configs.size());
  EXPECT_GT(report.job_wall.max_s, 0.0);
  EXPECT_LE(report.job_wall.min_s, report.job_wall.p95_s);
  EXPECT_LE(report.job_wall.p95_s, report.job_wall.max_s);
}

// --------------------------------------------------------- progress ticker --

TEST(ProgressTicker, NonTtyEmitsPlainNewlineTerminatedLines) {
  const auto configs = tiny_sweep(3);
  exp::JobQueue queue(configs);
  exp::MemorySink sink;
  std::ostringstream out;
  exp::ExecutorOptions opts;
  opts.workers = 1;
  opts.progress = true;
  opts.progress_stream = &out;
  opts.progress_tty = 0;  // force CI mode
  exp::Executor executor(opts);
  ASSERT_TRUE(executor.run(queue, sink).ok());

  const std::string text = out.str();
  EXPECT_EQ(text.find('\r'), std::string::npos);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');  // final summary line is newline-terminated
  EXPECT_NE(text.find("3/3 jobs"), std::string::npos);
}

TEST(ProgressTicker, TtyModeOverwritesInPlace) {
  const auto configs = tiny_sweep(3);
  exp::JobQueue queue(configs);
  exp::MemorySink sink;
  std::ostringstream out;
  exp::ExecutorOptions opts;
  opts.workers = 1;
  opts.progress = true;
  opts.progress_stream = &out;
  opts.progress_tty = 1;  // force interactive mode
  exp::Executor executor(opts);
  ASSERT_TRUE(executor.run(queue, sink).ok());

  const std::string text = out.str();
  EXPECT_NE(text.find('\r'), std::string::npos);  // carriage-return overwrite
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');  // still ends with one clean newline
}

TEST(ProgressTicker, StatusPathWrittenWithoutProgress) {
  const auto configs = tiny_sweep(2);
  const std::string path = temp_path("exec_status.json");
  exp::JobQueue queue(configs);
  exp::MemorySink sink;
  exp::ExecutorOptions opts;
  opts.workers = 1;
  opts.progress = false;
  opts.status_path = path;
  exp::Executor executor(opts);
  ASSERT_TRUE(executor.run(queue, sink).ok());

  const auto st = obs::read_status_file(path);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->phase, "done");
  EXPECT_EQ(st->jobs_total, configs.size());
  EXPECT_EQ(st->jobs_done, configs.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oracle
