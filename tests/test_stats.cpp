// Tests for the statistics substrate: accumulator, histogram, time series.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/accumulator.hpp"
#include "stats/histogram.hpp"
#include "stats/metrics_recorder.hpp"
#include "stats/timeseries.hpp"

namespace oracle::stats {
namespace {

// --------------------------------------------------------------------------
// Accumulator
// --------------------------------------------------------------------------

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(a.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SampleVarianceBesselCorrected) {
  Accumulator a;
  a.add(1.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 1.0);
  EXPECT_DOUBLE_EQ(a.sample_variance(), 2.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(42.0);
  EXPECT_DOUBLE_EQ(a.mean(), 42.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 42.0);
  EXPECT_DOUBLE_EQ(a.max(), 42.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  Accumulator b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Accumulator, ResetClears) {
  Accumulator a;
  a.add(5.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

TEST(Histogram, EmptyDefaults) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.count(5), 0u);
}

TEST(Histogram, AddAndCount) {
  Histogram h;
  h.add(0);
  h.add(3);
  h.add(3);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(1), 0u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.buckets(), 4u);
}

TEST(Histogram, WeightedMean) {
  // The paper's Table 3 statistic: mean hop distance.
  Histogram h;
  h.add(0, 4068);
  h.add(1, 2372);
  h.add(2, 1045);
  h.add(3, 527);
  h.add(4, 195);
  h.add(5, 84);
  h.add(6, 43);
  h.add(7, 20);
  h.add(8, 4);
  h.add(9, 3);
  EXPECT_EQ(h.total(), 8361u);
  EXPECT_NEAR(h.mean(), 0.92, 0.005);  // the paper's GM average
}

TEST(Histogram, QuantileBasics) {
  Histogram h;
  for (std::size_t v = 0; v < 10; ++v) h.add(v, 10);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 4u);
  EXPECT_EQ(h.quantile(1.0), 9u);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a, b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(5, 1);
  a.merge(b);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(5), 1u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(Histogram, ToStringFormat) {
  Histogram h;
  h.add(0, 2);
  h.add(2, 1);
  EXPECT_EQ(h.to_string(), "0:2 1:0 2:1");
}

// --------------------------------------------------------------------------
// TimeSeries (view over MetricsRecorder scalar columns)
// --------------------------------------------------------------------------

/// Build a recorder holding one series with the given samples.
MetricsRecorder record_series(const std::string& name,
                              const std::vector<std::pair<sim::SimTime, double>>&
                                  samples) {
  MetricsRecorder rec;
  const SeriesId id = rec.add_series(name, samples.size());
  for (const auto& [t, v] : samples) rec.append(id, t, v);
  return rec;
}

TEST(TimeSeries, AddAndAccess) {
  const auto rec = record_series("util", {{0, 1.0}, {10, 3.0}});
  const TimeSeries ts = rec.series("util");
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.time_at(1), 10);
  EXPECT_DOUBLE_EQ(ts.value_at(1), 3.0);
  EXPECT_EQ(ts.name(), "util");
}

TEST(TimeSeries, MaxAndMean) {
  const auto rec = record_series("s", {{0, 1.0}, {1, 5.0}, {2, 3.0}});
  const TimeSeries ts = rec.series(SeriesId{0});
  EXPECT_DOUBLE_EQ(ts.max_value(), 5.0);
  EXPECT_DOUBLE_EQ(ts.mean_value(), 3.0);
}

TEST(TimeSeries, InterpolateLinear) {
  const auto rec = record_series("s", {{0, 0.0}, {10, 100.0}});
  const TimeSeries ts = rec.series(SeriesId{0});
  EXPECT_DOUBLE_EQ(ts.interpolate(5), 50.0);
  EXPECT_DOUBLE_EQ(ts.interpolate(-5), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(ts.interpolate(99), 100.0);  // clamped
}

TEST(TimeSeries, CsvOutput) {
  const auto rec = record_series("u", {{1, 2.5}});
  EXPECT_EQ(rec.series("u").to_csv(), "time,u\n1,2.5\n");
}

TEST(TimeSeries, MissingSeriesIsNamedEmptyView) {
  const MetricsRecorder rec;
  const TimeSeries ts = rec.series("absent");
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.name(), "absent");
  EXPECT_EQ(ts.to_csv(), "time,absent\n");
}

// --------------------------------------------------------------------------
// MetricsRecorder counters
// --------------------------------------------------------------------------

TEST(MetricsRecorder, CountersAccumulateByIdAndName) {
  MetricsRecorder rec;
  const CounterId a = rec.add_counter("goal_transmissions");
  const CounterId b = rec.add_counter("control_transmissions");
  rec.add(a);
  rec.add(a, 4);
  rec.add(b, 2);
  EXPECT_EQ(rec.counter_value(a), 5u);
  EXPECT_EQ(rec.counter_value("goal_transmissions"), 5u);
  EXPECT_EQ(rec.counter_value("control_transmissions"), 2u);
  EXPECT_EQ(rec.counter_value("absent"), 0u);
  EXPECT_EQ(rec.num_counters(), 2u);
  EXPECT_EQ(rec.counter_name(b), "control_transmissions");
}

}  // namespace
}  // namespace oracle::stats
