// Crash-safe distributed sharding (src/exp/shard.*): shard assignment and
// slicing, the merge protocol's byte-identical guarantee vs a serial run,
// crash detection + resume convergence after a simulated SIGKILL, the
// POSIX process-spawn layer, and property tests for the work-stealing
// lease protocol (lease partition invariants under random steal sequences,
// retain_range/retain_shard vs a reference model, heartbeat staleness).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/sweep.hpp"
#include "exp/exp.hpp"
#include "util/file_util.hpp"

namespace oracle {
namespace {

core::ExperimentConfig small_config(std::uint64_t seed = 1) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:5x5";
  cfg.strategy = "cwn:radius=4,horizon=1";
  cfg.workload = "fib:9";
  cfg.machine.seed = seed;
  return cfg;
}

/// A fast 3 (topology) x 3 (strategy) x 2 (seed) sweep = 18 jobs.
std::vector<core::ExperimentConfig> small_sweep() {
  return core::SweepBuilder(small_config())
      .topologies({"grid:5x5", "grid:6x6", "dlm:5:5x5"})
      .strategies({"cwn:radius=4,horizon=1", "gm:hwm=2,lwm=1", "random"})
      .seeds({1, 2})
      .build();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "oracle_shard_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Keep only the first `n` lines of `path` (simulates the clean-prefix
/// state a SIGKILLed worker leaves behind).
void keep_lines(const std::string& path, std::size_t n) {
  std::ifstream in(path);
  std::string line, kept;
  for (std::size_t i = 0; i < n && std::getline(in, line); ++i)
    kept += line + '\n';
  in.close();
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << kept;
}

void remove_run_files(const std::string& canonical, std::size_t shards) {
  std::remove(canonical.c_str());
  std::remove(exp::Checkpoint::default_path(canonical).c_str());
  for (std::size_t i = 0; i < shards; ++i) {
    const auto store = exp::shard_store_path(canonical, i, shards);
    std::remove(store.c_str());
    std::remove(exp::Checkpoint::default_path(store).c_str());
  }
}

/// Run one shard's slice in-process, exactly as an `oracle_batch run
/// --shard i/N` worker would.
exp::BatchOutcome run_shard_worker(
    const std::vector<core::ExperimentConfig>& configs,
    const std::string& canonical, std::size_t index, std::size_t count,
    bool resume = false) {
  exp::BatchOptions opt;
  opt.jsonl_path = exp::shard_store_path(canonical, index, count);
  opt.shard_index = index;
  opt.shard_count = count;
  opt.resume = resume;
  if (resume) opt.extra_resume_stores.push_back(canonical);
  opt.collect = false;
  return exp::run_batch(configs, opt);
}

// -------------------------------------------------------------- ShardSpec --

TEST(ShardSpec, ParsesValidAndRejectsMalformed) {
  const auto s = exp::ShardSpec::parse("2/4");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->index, 2u);
  EXPECT_EQ(s->count, 4u);
  EXPECT_EQ(s->to_string(), "2/4");
  EXPECT_TRUE(exp::ShardSpec::parse("0/1").has_value());

  for (const char* bad : {"", "3", "4/4", "5/4", "/4", "2/", "a/b", "-1/4",
                          "1/-3", "-1/-3", "1/0", "1/4/2"})
    EXPECT_FALSE(exp::ShardSpec::parse(bad).has_value()) << bad;
}

TEST(ShardSpec, HashRuleIsStableAndStorePathsAreDistinct) {
  EXPECT_EQ(exp::shard_of_hash(17, 1), 0u);
  EXPECT_EQ(exp::shard_of_hash(17, 4), 17u % 4u);
  EXPECT_EQ(exp::shard_of_hash(17, 0), 0u);  // degenerate count

  std::unordered_set<std::string> paths;
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_TRUE(paths.insert(exp::shard_store_path("sweep.jsonl", i, 4)).second);
  EXPECT_EQ(exp::shard_store_path("s.jsonl", 1, 4), "s.jsonl.shard1of4");
}

// --------------------------------------------------------- queue slicing --

TEST(ShardPlan, RetainShardPartitionsTheQueueDisjointly) {
  const auto configs = small_sweep();
  std::unordered_set<std::uint64_t> seen;
  std::size_t total = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    exp::JobQueue q(configs);
    q.retain_shard(i, 3);
    total += q.size();
    for (const auto& job : q.jobs()) {
      EXPECT_EQ(job.content_hash % 3, i);
      EXPECT_TRUE(seen.insert(job.content_hash).second)
          << "job in two shards";
    }
  }
  EXPECT_EQ(total, configs.size());

  // count <= 1 keeps everything.
  exp::JobQueue q(configs);
  EXPECT_EQ(q.retain_shard(0, 1), 0u);
  EXPECT_EQ(q.size(), configs.size());
}

TEST(ShardPlan, PlanMatchesRetainShardAndCountsJobs) {
  const auto configs = small_sweep();
  exp::JobQueue q(configs);
  const exp::ShardPlan plan(q, 3);
  EXPECT_EQ(plan.count(), 3u);
  EXPECT_EQ(plan.total_jobs(), configs.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (const auto h : plan.shard_hashes(i)) EXPECT_EQ(h % 3, i);
    total += plan.shard_hashes(i).size();
  }
  EXPECT_EQ(total, configs.size());
}

// ------------------------------------------------ merge = serial, bytewise --

TEST(ShardMerger, MergedStoreIsByteIdenticalToSerialRun) {
  const auto configs = small_sweep();
  const auto serial = temp_path("serial.jsonl");
  const auto canonical = temp_path("merged.jsonl");
  remove_run_files(canonical, 3);

  exp::BatchOptions sopt;
  sopt.jsonl_path = serial;
  sopt.collect = false;
  ASSERT_TRUE(exp::run_batch(configs, sopt).report.ok());

  std::size_t worker_total = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto outcome = run_shard_worker(configs, canonical, i, 3);
    ASSERT_TRUE(outcome.report.ok());
    worker_total += outcome.report.executed;
  }
  EXPECT_EQ(worker_total, configs.size());

  exp::ShardMerger merger;
  for (std::size_t i = 0; i < 3; ++i)
    merger.add_store(exp::shard_store_path(canonical, i, 3));
  const auto report = merger.merge_to(canonical);
  EXPECT_EQ(report.stores_read, 3u);
  EXPECT_EQ(report.records, configs.size());
  EXPECT_EQ(report.duplicates_dropped, 0u);
  EXPECT_EQ(report.corrupt_lines, 0u);

  const auto serial_bytes = read_file(serial);
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, read_file(canonical));
  // The rebuilt canonical checkpoint matches the serial run's too.
  EXPECT_EQ(read_file(exp::Checkpoint::default_path(serial)),
            read_file(exp::Checkpoint::default_path(canonical)));

  std::remove(serial.c_str());
  std::remove(exp::Checkpoint::default_path(serial).c_str());
  remove_run_files(canonical, 3);
}

TEST(ShardMerger, DropsDuplicatesAndIgnoresCorruptTails) {
  const auto configs = small_sweep();
  const auto canonical = temp_path("dupes.jsonl");
  remove_run_files(canonical, 2);
  for (std::size_t i = 0; i < 2; ++i)
    ASSERT_TRUE(run_shard_worker(configs, canonical, i, 2).report.ok());

  // Corrupt one store's tail (mid-write kill) and duplicate a record.
  const auto store0 = exp::shard_store_path(canonical, 0, 2);
  std::string first_line;
  {
    std::ifstream in(store0);
    std::getline(in, first_line);
  }
  {
    std::ofstream out(store0, std::ios::app);
    out << first_line << "\n{\"job\":99,\"hash\":\"truncat";  // no newline
  }

  exp::ShardMerger merger;
  merger.add_store(store0);
  merger.add_store(exp::shard_store_path(canonical, 1, 2));
  merger.add_store(temp_path("does_not_exist.jsonl"));
  const auto report = merger.merge_to(canonical);
  EXPECT_EQ(report.stores_read, 2u);
  EXPECT_EQ(report.records, configs.size());
  EXPECT_EQ(report.duplicates_dropped, 1u);
  EXPECT_EQ(report.corrupt_lines, 1u);
  EXPECT_EQ(exp::load_completed_hashes(canonical).size(), configs.size());

  remove_run_files(canonical, 2);
}

// --------------------------------------- crash detection + resume converges --

TEST(ShardPlan, KilledWorkerIsDetectedAndResumeConvergesByteIdentically) {
  const auto configs = small_sweep();
  const auto serial = temp_path("kill_serial.jsonl");
  const auto canonical = temp_path("kill_merged.jsonl");
  remove_run_files(canonical, 3);

  exp::BatchOptions sopt;
  sopt.jsonl_path = serial;
  sopt.collect = false;
  ASSERT_TRUE(exp::run_batch(configs, sopt).report.ok());

  // All three workers run; then the busiest one is "SIGKILLed" after 2
  // jobs — its store and checkpoint keep a clean 2-record prefix.
  for (std::size_t i = 0; i < 3; ++i)
    ASSERT_TRUE(run_shard_worker(configs, canonical, i, 3).report.ok());
  exp::JobQueue queue(configs);
  const exp::ShardPlan plan(queue, 3);
  std::size_t victim = 0;
  for (std::size_t i = 1; i < 3; ++i)
    if (plan.shard_hashes(i).size() > plan.shard_hashes(victim).size())
      victim = i;
  ASSERT_GT(plan.shard_hashes(victim).size(), 2u);  // pigeonhole: max >= 6
  const auto victim_store = exp::shard_store_path(canonical, victim, 3);
  keep_lines(victim_store, 2);
  keep_lines(exp::Checkpoint::default_path(victim_store), 2);

  // Crash detection: only the killed shard is incomplete.
  EXPECT_EQ(plan.incomplete_shards(canonical),
            (std::vector<std::size_t>{victim}));

  // Resume re-runs only the dead shard's missing jobs...
  const auto resumed = run_shard_worker(configs, canonical, victim, 3, true);
  ASSERT_TRUE(resumed.report.ok());
  EXPECT_EQ(resumed.report.skipped, 2u);
  EXPECT_EQ(resumed.report.executed,
            plan.shard_hashes(victim).size() - 2u);
  EXPECT_TRUE(plan.incomplete_shards(canonical).empty());

  // ...and the merge converges to the serial bytes: no loss, no dupes.
  exp::ShardMerger merger;
  for (std::size_t i = 0; i < 3; ++i)
    merger.add_store(exp::shard_store_path(canonical, i, 3));
  const auto report = merger.merge_to(canonical);
  EXPECT_EQ(report.records, configs.size());
  EXPECT_EQ(report.duplicates_dropped, 0u);
  EXPECT_EQ(read_file(serial), read_file(canonical));

  std::remove(serial.c_str());
  std::remove(exp::Checkpoint::default_path(serial).c_str());
  remove_run_files(canonical, 3);
}

TEST(ShardPlan, JobsMergedIntoCanonicalStoreAreNotReRun) {
  const auto configs = small_sweep();
  const auto canonical = temp_path("extra_resume.jsonl");
  remove_run_files(canonical, 2);

  // Round 1 completed and merged; the per-shard stores were cleaned up.
  for (std::size_t i = 0; i < 2; ++i)
    ASSERT_TRUE(run_shard_worker(configs, canonical, i, 2).report.ok());
  exp::ShardMerger merger;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto store = exp::shard_store_path(canonical, i, 2);
    merger.add_store(store);
    std::remove(store.c_str());
    std::remove(exp::Checkpoint::default_path(store).c_str());
  }
  ASSERT_EQ(merger.merge_to(canonical).records, configs.size());

  // Crash detection consults the canonical store as well.
  exp::JobQueue queue(configs);
  const exp::ShardPlan plan(queue, 2);
  EXPECT_TRUE(
      plan.incomplete_shards(canonical,
                             exp::load_completed_hashes(canonical))
          .empty());

  // A resumed worker skips everything via extra_resume_stores.
  const auto resumed = run_shard_worker(configs, canonical, 0, 2, true);
  EXPECT_TRUE(resumed.report.ok());
  EXPECT_EQ(resumed.report.executed, 0u);
  EXPECT_EQ(resumed.report.skipped, plan.shard_hashes(0).size());

  remove_run_files(canonical, 2);
}

// ----------------------------------------------- lease files & partition --

TEST(LeaseFile, RoundTripsAndRejectsMalformed) {
  const auto path = temp_path("lease_roundtrip");
  exp::Lease lease;
  lease.generation = 7;
  lease.begin = 12;
  lease.end = 40;
  exp::write_lease_file(path, lease);
  const auto back = exp::read_lease_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->generation, 7u);
  EXPECT_EQ(back->begin, 12u);
  EXPECT_EQ(back->end, 40u);

  EXPECT_FALSE(exp::read_lease_file(temp_path("lease_missing")).has_value());
  for (const char* bad : {"", "v2 1 0 4", "v1 1 9 4", "v1 nonsense"}) {
    std::ofstream out(path, std::ios::trunc);
    out << bad << "\n";
    out.close();
    EXPECT_FALSE(exp::read_lease_file(path).has_value()) << bad;
  }
  std::remove(path.c_str());
}

TEST(LeaseFile, ChecksumMismatchReadsAsTornAndBumpsTheCounter) {
  const auto path = temp_path("lease_torn");

  // A torn write can leave a line whose prefix parses as plausible
  // numbers; only the checksum betrays it. Valid "v2" shape, wrong sum.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "v2 7 12 40 deadbeefdeadbeef\n";
  }
  const auto before = exp::lease_file_torn_reads();
  EXPECT_FALSE(exp::read_lease_file(path).has_value());
  EXPECT_EQ(exp::lease_file_torn_reads(), before + 1);

  // Pre-checksum "v1" files have no sum to verify: still readable, and
  // not counted as torn.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "v1 7 12 40\n";
  }
  const auto v1 = exp::read_lease_file(path);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->generation, 7u);
  EXPECT_EQ(v1->begin, 12u);
  EXPECT_EQ(v1->end, 40u);
  EXPECT_EQ(exp::lease_file_torn_reads(), before + 1);

  // A rewrite through the real writer repairs the file in place.
  exp::Lease lease;
  lease.generation = 8;
  lease.begin = 12;
  lease.end = 40;
  exp::write_lease_file(path, lease);
  const auto repaired = exp::read_lease_file(path);
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(repaired->generation, 8u);
  EXPECT_EQ(exp::lease_file_torn_reads(), before + 1);

  std::remove(path.c_str());
}

TEST(LeaseTable, InitialPartitionIsBalancedAndComplete) {
  for (const auto& [jobs, slots] : std::vector<std::pair<std::size_t,
                                                         std::size_t>>{
           {0, 1}, {1, 1}, {5, 2}, {7, 3}, {18, 4}, {3, 8}, {100, 7}}) {
    const exp::LeaseTable table(jobs, slots);
    EXPECT_TRUE(table.partitions_queue()) << jobs << "/" << slots;
    std::size_t covered = 0, max_size = 0, min_size = jobs + 1;
    for (std::size_t k = 0; k < table.slots(); ++k) {
      covered += table.lease(k).size();
      max_size = std::max(max_size, table.lease(k).size());
      min_size = std::min(min_size, table.lease(k).size());
      // Empty leases (more slots than jobs) are born drained.
      EXPECT_EQ(table.drained(k), table.lease(k).empty());
    }
    EXPECT_EQ(covered, jobs);
    if (jobs >= slots) {
      EXPECT_LE(max_size - min_size, 1u) << "unbalanced";
    }
  }
}

TEST(LeaseTable, StealValidationRejectsInvalidRequests) {
  exp::LeaseTable table(20, 2);  // slot0 [0,10), slot1 [10,20)
  // Thief still live.
  EXPECT_FALSE(table.steal(0, 1, 5).has_value());
  table.mark_drained(1);
  // Split outside (begin, end).
  EXPECT_FALSE(table.steal(0, 1, 0).has_value());
  EXPECT_FALSE(table.steal(0, 1, 10).has_value());
  EXPECT_FALSE(table.steal(0, 1, 15).has_value());
  // Self-steal and out-of-range slots.
  EXPECT_FALSE(table.steal(0, 0, 5).has_value());
  EXPECT_FALSE(table.steal(7, 1, 5).has_value());
  // Valid steal; then the drained victim cannot be stolen from.
  const auto lease = table.steal(0, 1, 6);
  ASSERT_TRUE(lease.has_value());
  EXPECT_EQ(lease->begin, 6u);
  EXPECT_EQ(lease->end, 10u);
  EXPECT_TRUE(table.partitions_queue());
  table.mark_drained(0);
  table.mark_drained(1);
  EXPECT_FALSE(table.steal(0, 1, 8).has_value());
  EXPECT_TRUE(table.all_drained());
}

TEST(LeaseTable, RandomStealSequencesPreserveThePartitionInvariant) {
  // Property test: whatever interleaving of drains and (valid or invalid)
  // steals the supervisor performs, the leases — live plus retired — must
  // always tile [0, jobs) exactly: pairwise-disjoint, no gaps.
  std::mt19937 rng(20260729);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t jobs = 1 + rng() % 300;
    const std::size_t slots = 1 + rng() % 8;
    exp::LeaseTable table(jobs, slots);
    ASSERT_TRUE(table.partitions_queue());

    std::size_t steals = 0;
    for (int op = 0; op < 64; ++op) {
      const std::size_t a = rng() % slots;
      if (rng() % 2 == 0) {
        if (!table.drained(a)) table.mark_drained(a);
      } else {
        const std::size_t victim = rng() % slots;
        const std::size_t split = rng() % (jobs + 2);
        const auto before_victim = table.lease(victim);
        const auto lease = table.steal(victim, a, split);
        if (lease.has_value()) {
          ++steals;
          // The stolen range is exactly the victim's former tail.
          EXPECT_EQ(lease->begin, split);
          EXPECT_EQ(lease->end, before_victim.end);
          EXPECT_EQ(table.lease(victim).end, split);
          EXPECT_FALSE(table.drained(a));
        }
      }
      ASSERT_TRUE(table.partitions_queue())
          << "trial " << trial << " op " << op << " jobs " << jobs
          << " slots " << slots;
    }
    // Drain everything: the table must agree the queue is fully covered.
    for (std::size_t k = 0; k < slots; ++k) table.mark_drained(k);
    EXPECT_TRUE(table.all_drained());
    (void)steals;
  }
}

TEST(JobQueue, RetainRangeMatchesReferenceModelAndTilesTheQueue) {
  const auto configs = small_sweep();
  std::mt19937 rng(987);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t begin = rng() % (configs.size() + 2);
    const std::size_t end = rng() % (configs.size() + 2);
    exp::JobQueue q(configs);
    q.retain_range(begin, end);
    // Reference model: filter the enumerated sweep by index directly.
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < configs.size(); ++i)
      if (i >= begin && i < end) expected.push_back(i);
    ASSERT_EQ(q.size(), expected.size()) << begin << ".." << end;
    for (std::size_t pos = 0; pos < q.size(); ++pos)
      EXPECT_EQ(q.job(pos).index, expected[pos]);
  }

  // A LeaseTable partition applied through retain_range covers the queue
  // exactly once — the lease analogue of the retain_shard disjointness
  // test above, for random slot counts.
  for (const std::size_t slots : {1u, 2u, 3u, 5u, 18u, 30u}) {
    const exp::LeaseTable table(configs.size(), slots);
    std::vector<int> owners(configs.size(), 0);
    for (std::size_t k = 0; k < table.slots(); ++k) {
      exp::JobQueue q(configs);
      q.retain_range(table.lease(k).begin, table.lease(k).end);
      EXPECT_EQ(q.size(), table.lease(k).size());
      for (std::size_t pos = 0; pos < q.size(); ++pos)
        ++owners[q.job(pos).index];
    }
    for (std::size_t i = 0; i < owners.size(); ++i)
      EXPECT_EQ(owners[i], 1) << "job " << i << " with " << slots << " slots";
  }
}

TEST(JobQueue, RetainShardAgreesWithShardPlanReferenceModel) {
  const auto configs = small_sweep();
  std::mt19937 rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t count = 1 + rng() % 9;
    exp::JobQueue full(configs);
    const exp::ShardPlan plan(full, count);
    for (std::size_t i = 0; i < count; ++i) {
      exp::JobQueue q(configs);
      q.retain_shard(i, count);
      // The plan's per-shard hash list is the reference model: same jobs,
      // same order.
      ASSERT_EQ(q.size(), plan.shard_hashes(i).size());
      for (std::size_t pos = 0; pos < q.size(); ++pos)
        EXPECT_EQ(q.job(pos).content_hash, plan.shard_hashes(i)[pos]);
    }
  }
}

// ------------------------------------------------------ heartbeat monitor --

TEST(HeartbeatMonitor, DetectsStallsOnlyAfterTheTimeout) {
  using namespace std::chrono_literals;
  const auto t0 = std::chrono::steady_clock::time_point{};
  exp::HeartbeatMonitor hb(100ms);

  // Unarmed slots are never stale.
  EXPECT_FALSE(hb.stale(0, t0 + 1h));

  hb.start(0, t0);
  EXPECT_FALSE(hb.stale(0, t0 + 99ms));
  EXPECT_TRUE(hb.stale(0, t0 + 101ms));  // no heartbeat since spawn

  // A changing value keeps the slot fresh; an unchanged one goes stale.
  hb.start(0, t0);
  hb.observe(0, 1000, t0 + 50ms);
  EXPECT_FALSE(hb.stale(0, t0 + 140ms));
  hb.observe(0, 2000, t0 + 150ms);
  hb.observe(0, 2000, t0 + 240ms);  // same mtime: no progress
  EXPECT_FALSE(hb.stale(0, t0 + 240ms));
  EXPECT_TRUE(hb.stale(0, t0 + 260ms));

  // A missing heartbeat file (sentinel -1) is itself a value: it only
  // counts as life once, not every poll.
  hb.start(1, t0);
  hb.observe(1, -1, t0 + 10ms);
  hb.observe(1, -1, t0 + 90ms);
  EXPECT_TRUE(hb.stale(1, t0 + 120ms));

  // stop() disarms; a later start() re-arms from the new baseline.
  hb.stop(0);
  EXPECT_FALSE(hb.stale(0, t0 + 10h));
  hb.start(0, t0 + 10h);
  EXPECT_FALSE(hb.stale(0, t0 + 10h + 99ms));
  EXPECT_TRUE(hb.stale(0, t0 + 10h + 101ms));
}

TEST(LeaseTable, ReassignMovesTheUncommittedTailToTheThief) {
  exp::LeaseTable table(20, 2);  // slot0 [0,10), slot1 [10,20)
  table.mark_drained(1);

  // Invalid requests leave the table untouched: self-reassign,
  // out-of-range slots, live thief, drained victim, frontier outside
  // the victim's lease.
  EXPECT_FALSE(table.reassign(0, 0, 5).has_value());
  EXPECT_FALSE(table.reassign(7, 1, 5).has_value());
  EXPECT_FALSE(table.reassign(1, 0, 15).has_value());  // thief 0 is live
  EXPECT_FALSE(table.reassign(0, 1, 11).has_value());  // frontier > end
  EXPECT_FALSE(table.drained(0));
  EXPECT_EQ(table.lease(0).begin, 0u);
  EXPECT_EQ(table.lease(0).end, 10u);
  EXPECT_TRUE(table.partitions_queue());

  // The thief takes the dead victim's uncommitted tail; the committed
  // head retires and the victim collapses to an empty drained lease.
  const auto old_gen = table.lease(1).generation;
  const auto moved = table.reassign(0, 1, 4);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->begin, 4u);
  EXPECT_EQ(moved->end, 10u);
  EXPECT_GT(moved->generation, old_gen);
  EXPECT_TRUE(table.drained(0));
  EXPECT_TRUE(table.lease(0).empty());
  EXPECT_FALSE(table.drained(1));
  EXPECT_TRUE(table.partitions_queue());

  // A fully-committed victim has no tail to move: the lease just
  // retires (nullopt), the victim drains, the thief stays drained.
  table.mark_drained(1);
  exp::LeaseTable done(8, 2);  // slot0 [0,4), slot1 [4,8)
  done.mark_drained(1);
  EXPECT_FALSE(done.reassign(0, 1, 4).has_value());
  EXPECT_TRUE(done.drained(0));
  EXPECT_TRUE(done.drained(1));
  EXPECT_TRUE(done.partitions_queue());
  EXPECT_TRUE(done.all_drained());
}

TEST(HeartbeatMonitor, ObserveYieldsInterProgressIntervals) {
  using namespace std::chrono_literals;
  const auto t0 = std::chrono::steady_clock::time_point{};
  exp::HeartbeatMonitor hb(1s);

  // Unarmed slots never yield intervals.
  EXPECT_FALSE(hb.observe(0, 100, t0).has_value());

  hb.start(0, t0);
  // The first change after arming is spawn latency, not job pace.
  EXPECT_FALSE(hb.observe(0, 100, t0 + 250ms).has_value());
  // An unchanged value is not progress.
  EXPECT_FALSE(hb.observe(0, 100, t0 + 400ms).has_value());
  // From the second change on, the inter-progress interval comes back.
  const auto a = hb.observe(0, 200, t0 + 750ms);
  ASSERT_TRUE(a.has_value());
  EXPECT_NEAR(*a, 0.5, 1e-9);
  const auto b = hb.observe(0, 300, t0 + 850ms);
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(*b, 0.1, 1e-9);

  // set_timeout re-tunes staleness online (the adaptive path).
  EXPECT_FALSE(hb.stale(0, t0 + 850ms + 999ms));
  EXPECT_TRUE(hb.stale(0, t0 + 850ms + 1001ms));
  hb.set_timeout(100ms);
  EXPECT_TRUE(hb.stale(0, t0 + 850ms + 101ms));
  hb.set_timeout(10s);
  EXPECT_FALSE(hb.stale(0, t0 + 850ms + 5s));

  // Re-arming resets the spawn-latency skip.
  hb.start(0, t0 + 10s);
  EXPECT_FALSE(hb.observe(0, 400, t0 + 10s + 50ms).has_value());
  EXPECT_TRUE(hb.observe(0, 500, t0 + 10s + 150ms).has_value());
}

// ----------------------------------------------------- adaptive timeout --

TEST(AdaptiveTimeout, IsInfiniteUntilTheFirstSampleArrives) {
  exp::AdaptiveTimeout at;
  EXPECT_TRUE(std::isinf(at.timeout_seconds()));
  EXPECT_EQ(at.samples(), 0u);

  // Garbage samples are ignored, not recorded.
  at.record(0.0);
  at.record(-1.5);
  EXPECT_TRUE(std::isinf(at.timeout_seconds()));
  EXPECT_EQ(at.samples(), 0u);

  // Seeding from an empty distribution is a no-op too.
  exp::DurationStats empty;
  at.seed(empty);
  EXPECT_TRUE(std::isinf(at.timeout_seconds()));
}

TEST(AdaptiveTimeout, ClampsToTheFloorAndTheCap) {
  exp::AdaptiveTimeout fast;
  fast.record(0.01);  // raw = max(0.08, 0.02) — far below the 3s floor
  EXPECT_DOUBLE_EQ(fast.timeout_seconds(), 3.0);

  exp::AdaptiveTimeout slow;
  slow.record(100.0);  // raw = max(800, 200) — far above the 600s cap
  EXPECT_DOUBLE_EQ(slow.timeout_seconds(), 600.0);
}

TEST(AdaptiveTimeout, TracksTheP99AndKeepsAWhaleGuard) {
  // A uniform distribution drives the p99 * multiplier term.
  exp::AdaptiveTimeout at;
  for (int i = 0; i < 100; ++i) at.record(1.0);
  EXPECT_DOUBLE_EQ(at.timeout_seconds(), 8.0);  // 1.0 * 8

  // One whale: the max*2 guard dominates a p99 that stayed small.
  exp::AdaptiveTimeout whale;
  for (int i = 0; i < 100; ++i) whale.record(0.1);
  whale.record(10.0);
  EXPECT_DOUBLE_EQ(whale.timeout_seconds(), 20.0);  // max(0.8, 20)

  // The whale guard is all-time: evicting the whale from the sliding
  // window does not forget it.
  exp::AdaptiveTimeoutConfig tiny;
  tiny.window = 2;
  exp::AdaptiveTimeout evicted(tiny);
  evicted.record(5.0);
  evicted.record(0.1);
  evicted.record(0.1);  // window now holds {0.1, 0.1}
  EXPECT_DOUBLE_EQ(evicted.timeout_seconds(), 10.0);  // 5.0 * 2
}

TEST(AdaptiveTimeout, SeedsFromAPriorRunsDistribution) {
  exp::DurationStats stats;
  stats.count = 18;
  stats.p99_s = 2.0;
  stats.max_s = 2.5;
  exp::AdaptiveTimeout at;
  at.seed(stats);
  EXPECT_EQ(at.samples(), 2u);  // p99 + max stand in for the prior run
  EXPECT_DOUBLE_EQ(at.timeout_seconds(), 20.0);  // max(2.5 * 8, 5.0)
}

// -------------------------------------------- empty shards & empty leases --

TEST(ShardWorkers, EmptyStaticShardExitsCleanlyWithValidEmptyStore) {
  // More shards than jobs: some '--shard i/N' workers own zero jobs (the
  // cross-host launcher does not know the hash distribution up front).
  // They must succeed and leave a valid, empty store.
  const auto configs = small_sweep();
  const std::size_t count = configs.size() + 7;  // pigeonhole: empty shards
  const auto canonical = temp_path("empty_shard.jsonl");
  remove_run_files(canonical, count);

  exp::JobQueue probe(configs);
  const exp::ShardPlan plan(probe, count);
  std::size_t empty_shard = count;
  for (std::size_t i = 0; i < count; ++i)
    if (plan.shard_hashes(i).empty()) empty_shard = i;
  ASSERT_LT(empty_shard, count);

  const auto outcome =
      run_shard_worker(configs, canonical, empty_shard, count);
  EXPECT_TRUE(outcome.report.ok());
  EXPECT_EQ(outcome.report.total_jobs, 0u);
  EXPECT_EQ(outcome.report.executed, 0u);
  const auto store = exp::shard_store_path(canonical, empty_shard, count);
  EXPECT_TRUE(oracle::util::file_exists(store));
  EXPECT_TRUE(read_file(store).empty());
  EXPECT_TRUE(exp::load_completed_hashes(store).empty());
  // And the merger treats the empty store as a valid no-op input.
  exp::ShardMerger merger;
  merger.add_store(store);
  EXPECT_EQ(merger.merge_to(canonical).records, 0u);

  remove_run_files(canonical, count);
}

TEST(ShardWorkers, EmptyLeaseWorkerExitsCleanlyWithValidEmptyStore) {
  const auto configs = small_sweep();
  const auto canonical = temp_path("empty_lease.jsonl");
  const auto store = exp::worker_store_path(canonical, 0, 2);
  std::remove(store.c_str());
  std::remove(exp::Checkpoint::default_path(store).c_str());

  exp::LeaseWorkerOptions wopt;
  wopt.canonical_out = canonical;
  wopt.slot = 0;
  wopt.slot_count = 2;

  // Case 1: no lease file at all (supervisor died before writing it).
  auto report = exp::run_lease_worker(configs, wopt);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.total_jobs, 0u);
  EXPECT_TRUE(oracle::util::file_exists(store));
  EXPECT_TRUE(read_file(store).empty());

  // Case 2: an explicitly empty lease range.
  exp::Lease lease;
  lease.begin = lease.end = 5;
  exp::write_lease_file(exp::worker_lease_path(canonical, 0, 2), lease);
  report = exp::run_lease_worker(configs, wopt);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.total_jobs, 0u);
  EXPECT_TRUE(read_file(store).empty());

  std::remove(store.c_str());
  std::remove(exp::Checkpoint::default_path(store).c_str());
  std::remove(exp::worker_lease_path(canonical, 0, 2).c_str());
  std::remove(exp::worker_heartbeat_path(canonical, 0, 2).c_str());
}

// ---------------------------------------------------------- process layer --

#if !defined(_WIN32)

TEST(ShardProcesses, SpawnAndWaitReportsExitCodesAndSignals) {
  const std::vector<std::vector<std::string>> argvs = {
      {"/bin/sh", "-c", "exit 0"},
      {"/bin/sh", "-c", "exit 3"},
      {"/bin/sh", "-c", "kill -9 $$"},
  };
  const auto exits = exp::spawn_and_wait(argvs, {0, 1, 2});
  ASSERT_EQ(exits.size(), 3u);
  EXPECT_TRUE(exits[0].ok());
  EXPECT_EQ(exits[0].exit_code, 0);
  EXPECT_FALSE(exits[1].ok());
  EXPECT_EQ(exits[1].exit_code, 3);
  EXPECT_FALSE(exits[2].ok());
  EXPECT_EQ(exits[2].term_signal, 9);
  EXPECT_EQ(exits[2].shard, 2u);
}

TEST(ShardProcesses, SelfExecPathResolvesToARealFile) {
  const auto path = exp::self_exec_path("fallback");
  std::ifstream probe(path, std::ios::binary);
  EXPECT_TRUE(probe.good()) << path;
}

#endif  // !_WIN32

}  // namespace
}  // namespace oracle
