// Crash-safe distributed sharding (src/exp/shard.*): shard assignment and
// slicing, the merge protocol's byte-identical guarantee vs a serial run,
// crash detection + resume convergence after a simulated SIGKILL, and the
// POSIX process-spawn layer.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/sweep.hpp"
#include "exp/exp.hpp"

namespace oracle {
namespace {

core::ExperimentConfig small_config(std::uint64_t seed = 1) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:5x5";
  cfg.strategy = "cwn:radius=4,horizon=1";
  cfg.workload = "fib:9";
  cfg.machine.seed = seed;
  return cfg;
}

/// A fast 3 (topology) x 3 (strategy) x 2 (seed) sweep = 18 jobs.
std::vector<core::ExperimentConfig> small_sweep() {
  return core::SweepBuilder(small_config())
      .topologies({"grid:5x5", "grid:6x6", "dlm:5:5x5"})
      .strategies({"cwn:radius=4,horizon=1", "gm:hwm=2,lwm=1", "random"})
      .seeds({1, 2})
      .build();
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "oracle_shard_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Keep only the first `n` lines of `path` (simulates the clean-prefix
/// state a SIGKILLed worker leaves behind).
void keep_lines(const std::string& path, std::size_t n) {
  std::ifstream in(path);
  std::string line, kept;
  for (std::size_t i = 0; i < n && std::getline(in, line); ++i)
    kept += line + '\n';
  in.close();
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << kept;
}

void remove_run_files(const std::string& canonical, std::size_t shards) {
  std::remove(canonical.c_str());
  std::remove(exp::Checkpoint::default_path(canonical).c_str());
  for (std::size_t i = 0; i < shards; ++i) {
    const auto store = exp::shard_store_path(canonical, i, shards);
    std::remove(store.c_str());
    std::remove(exp::Checkpoint::default_path(store).c_str());
  }
}

/// Run one shard's slice in-process, exactly as an `oracle_batch run
/// --shard i/N` worker would.
exp::BatchOutcome run_shard_worker(
    const std::vector<core::ExperimentConfig>& configs,
    const std::string& canonical, std::size_t index, std::size_t count,
    bool resume = false) {
  exp::BatchOptions opt;
  opt.jsonl_path = exp::shard_store_path(canonical, index, count);
  opt.shard_index = index;
  opt.shard_count = count;
  opt.resume = resume;
  if (resume) opt.extra_resume_stores.push_back(canonical);
  opt.collect = false;
  return exp::run_batch(configs, opt);
}

// -------------------------------------------------------------- ShardSpec --

TEST(ShardSpec, ParsesValidAndRejectsMalformed) {
  const auto s = exp::ShardSpec::parse("2/4");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->index, 2u);
  EXPECT_EQ(s->count, 4u);
  EXPECT_EQ(s->to_string(), "2/4");
  EXPECT_TRUE(exp::ShardSpec::parse("0/1").has_value());

  for (const char* bad : {"", "3", "4/4", "5/4", "/4", "2/", "a/b", "-1/4",
                          "1/-3", "-1/-3", "1/0", "1/4/2"})
    EXPECT_FALSE(exp::ShardSpec::parse(bad).has_value()) << bad;
}

TEST(ShardSpec, HashRuleIsStableAndStorePathsAreDistinct) {
  EXPECT_EQ(exp::shard_of_hash(17, 1), 0u);
  EXPECT_EQ(exp::shard_of_hash(17, 4), 17u % 4u);
  EXPECT_EQ(exp::shard_of_hash(17, 0), 0u);  // degenerate count

  std::unordered_set<std::string> paths;
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_TRUE(paths.insert(exp::shard_store_path("sweep.jsonl", i, 4)).second);
  EXPECT_EQ(exp::shard_store_path("s.jsonl", 1, 4), "s.jsonl.shard1of4");
}

// --------------------------------------------------------- queue slicing --

TEST(ShardPlan, RetainShardPartitionsTheQueueDisjointly) {
  const auto configs = small_sweep();
  std::unordered_set<std::uint64_t> seen;
  std::size_t total = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    exp::JobQueue q(configs);
    q.retain_shard(i, 3);
    total += q.size();
    for (const auto& job : q.jobs()) {
      EXPECT_EQ(job.content_hash % 3, i);
      EXPECT_TRUE(seen.insert(job.content_hash).second)
          << "job in two shards";
    }
  }
  EXPECT_EQ(total, configs.size());

  // count <= 1 keeps everything.
  exp::JobQueue q(configs);
  EXPECT_EQ(q.retain_shard(0, 1), 0u);
  EXPECT_EQ(q.size(), configs.size());
}

TEST(ShardPlan, PlanMatchesRetainShardAndCountsJobs) {
  const auto configs = small_sweep();
  exp::JobQueue q(configs);
  const exp::ShardPlan plan(q, 3);
  EXPECT_EQ(plan.count(), 3u);
  EXPECT_EQ(plan.total_jobs(), configs.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (const auto h : plan.shard_hashes(i)) EXPECT_EQ(h % 3, i);
    total += plan.shard_hashes(i).size();
  }
  EXPECT_EQ(total, configs.size());
}

// ------------------------------------------------ merge = serial, bytewise --

TEST(ShardMerger, MergedStoreIsByteIdenticalToSerialRun) {
  const auto configs = small_sweep();
  const auto serial = temp_path("serial.jsonl");
  const auto canonical = temp_path("merged.jsonl");
  remove_run_files(canonical, 3);

  exp::BatchOptions sopt;
  sopt.jsonl_path = serial;
  sopt.collect = false;
  ASSERT_TRUE(exp::run_batch(configs, sopt).report.ok());

  std::size_t worker_total = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto outcome = run_shard_worker(configs, canonical, i, 3);
    ASSERT_TRUE(outcome.report.ok());
    worker_total += outcome.report.executed;
  }
  EXPECT_EQ(worker_total, configs.size());

  exp::ShardMerger merger;
  for (std::size_t i = 0; i < 3; ++i)
    merger.add_store(exp::shard_store_path(canonical, i, 3));
  const auto report = merger.merge_to(canonical);
  EXPECT_EQ(report.stores_read, 3u);
  EXPECT_EQ(report.records, configs.size());
  EXPECT_EQ(report.duplicates_dropped, 0u);
  EXPECT_EQ(report.corrupt_lines, 0u);

  const auto serial_bytes = read_file(serial);
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, read_file(canonical));
  // The rebuilt canonical checkpoint matches the serial run's too.
  EXPECT_EQ(read_file(exp::Checkpoint::default_path(serial)),
            read_file(exp::Checkpoint::default_path(canonical)));

  std::remove(serial.c_str());
  std::remove(exp::Checkpoint::default_path(serial).c_str());
  remove_run_files(canonical, 3);
}

TEST(ShardMerger, DropsDuplicatesAndIgnoresCorruptTails) {
  const auto configs = small_sweep();
  const auto canonical = temp_path("dupes.jsonl");
  remove_run_files(canonical, 2);
  for (std::size_t i = 0; i < 2; ++i)
    ASSERT_TRUE(run_shard_worker(configs, canonical, i, 2).report.ok());

  // Corrupt one store's tail (mid-write kill) and duplicate a record.
  const auto store0 = exp::shard_store_path(canonical, 0, 2);
  std::string first_line;
  {
    std::ifstream in(store0);
    std::getline(in, first_line);
  }
  {
    std::ofstream out(store0, std::ios::app);
    out << first_line << "\n{\"job\":99,\"hash\":\"truncat";  // no newline
  }

  exp::ShardMerger merger;
  merger.add_store(store0);
  merger.add_store(exp::shard_store_path(canonical, 1, 2));
  merger.add_store(temp_path("does_not_exist.jsonl"));
  const auto report = merger.merge_to(canonical);
  EXPECT_EQ(report.stores_read, 2u);
  EXPECT_EQ(report.records, configs.size());
  EXPECT_EQ(report.duplicates_dropped, 1u);
  EXPECT_EQ(report.corrupt_lines, 1u);
  EXPECT_EQ(exp::load_completed_hashes(canonical).size(), configs.size());

  remove_run_files(canonical, 2);
}

// --------------------------------------- crash detection + resume converges --

TEST(ShardPlan, KilledWorkerIsDetectedAndResumeConvergesByteIdentically) {
  const auto configs = small_sweep();
  const auto serial = temp_path("kill_serial.jsonl");
  const auto canonical = temp_path("kill_merged.jsonl");
  remove_run_files(canonical, 3);

  exp::BatchOptions sopt;
  sopt.jsonl_path = serial;
  sopt.collect = false;
  ASSERT_TRUE(exp::run_batch(configs, sopt).report.ok());

  // All three workers run; then the busiest one is "SIGKILLed" after 2
  // jobs — its store and checkpoint keep a clean 2-record prefix.
  for (std::size_t i = 0; i < 3; ++i)
    ASSERT_TRUE(run_shard_worker(configs, canonical, i, 3).report.ok());
  exp::JobQueue queue(configs);
  const exp::ShardPlan plan(queue, 3);
  std::size_t victim = 0;
  for (std::size_t i = 1; i < 3; ++i)
    if (plan.shard_hashes(i).size() > plan.shard_hashes(victim).size())
      victim = i;
  ASSERT_GT(plan.shard_hashes(victim).size(), 2u);  // pigeonhole: max >= 6
  const auto victim_store = exp::shard_store_path(canonical, victim, 3);
  keep_lines(victim_store, 2);
  keep_lines(exp::Checkpoint::default_path(victim_store), 2);

  // Crash detection: only the killed shard is incomplete.
  EXPECT_EQ(plan.incomplete_shards(canonical),
            (std::vector<std::size_t>{victim}));

  // Resume re-runs only the dead shard's missing jobs...
  const auto resumed = run_shard_worker(configs, canonical, victim, 3, true);
  ASSERT_TRUE(resumed.report.ok());
  EXPECT_EQ(resumed.report.skipped, 2u);
  EXPECT_EQ(resumed.report.executed,
            plan.shard_hashes(victim).size() - 2u);
  EXPECT_TRUE(plan.incomplete_shards(canonical).empty());

  // ...and the merge converges to the serial bytes: no loss, no dupes.
  exp::ShardMerger merger;
  for (std::size_t i = 0; i < 3; ++i)
    merger.add_store(exp::shard_store_path(canonical, i, 3));
  const auto report = merger.merge_to(canonical);
  EXPECT_EQ(report.records, configs.size());
  EXPECT_EQ(report.duplicates_dropped, 0u);
  EXPECT_EQ(read_file(serial), read_file(canonical));

  std::remove(serial.c_str());
  std::remove(exp::Checkpoint::default_path(serial).c_str());
  remove_run_files(canonical, 3);
}

TEST(ShardPlan, JobsMergedIntoCanonicalStoreAreNotReRun) {
  const auto configs = small_sweep();
  const auto canonical = temp_path("extra_resume.jsonl");
  remove_run_files(canonical, 2);

  // Round 1 completed and merged; the per-shard stores were cleaned up.
  for (std::size_t i = 0; i < 2; ++i)
    ASSERT_TRUE(run_shard_worker(configs, canonical, i, 2).report.ok());
  exp::ShardMerger merger;
  for (std::size_t i = 0; i < 2; ++i) {
    const auto store = exp::shard_store_path(canonical, i, 2);
    merger.add_store(store);
    std::remove(store.c_str());
    std::remove(exp::Checkpoint::default_path(store).c_str());
  }
  ASSERT_EQ(merger.merge_to(canonical).records, configs.size());

  // Crash detection consults the canonical store as well.
  exp::JobQueue queue(configs);
  const exp::ShardPlan plan(queue, 2);
  EXPECT_TRUE(
      plan.incomplete_shards(canonical,
                             exp::load_completed_hashes(canonical))
          .empty());

  // A resumed worker skips everything via extra_resume_stores.
  const auto resumed = run_shard_worker(configs, canonical, 0, 2, true);
  EXPECT_TRUE(resumed.report.ok());
  EXPECT_EQ(resumed.report.executed, 0u);
  EXPECT_EQ(resumed.report.skipped, plan.shard_hashes(0).size());

  remove_run_files(canonical, 2);
}

// ---------------------------------------------------------- process layer --

#if !defined(_WIN32)

TEST(ShardProcesses, SpawnAndWaitReportsExitCodesAndSignals) {
  const std::vector<std::vector<std::string>> argvs = {
      {"/bin/sh", "-c", "exit 0"},
      {"/bin/sh", "-c", "exit 3"},
      {"/bin/sh", "-c", "kill -9 $$"},
  };
  const auto exits = exp::spawn_and_wait(argvs, {0, 1, 2});
  ASSERT_EQ(exits.size(), 3u);
  EXPECT_TRUE(exits[0].ok());
  EXPECT_EQ(exits[0].exit_code, 0);
  EXPECT_FALSE(exits[1].ok());
  EXPECT_EQ(exits[1].exit_code, 3);
  EXPECT_FALSE(exits[2].ok());
  EXPECT_EQ(exits[2].term_signal, 9);
  EXPECT_EQ(exits[2].shard, 2u);
}

TEST(ShardProcesses, SelfExecPathResolvesToARealFile) {
  const auto path = exp::self_exec_path("fallback");
  std::ifstream probe(path, std::ios::binary);
  EXPECT_TRUE(probe.good()) << path;
}

#endif  // !_WIN32

}  // namespace
}  // namespace oracle
