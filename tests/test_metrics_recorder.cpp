// MetricsRecorder: recorder-vs-legacy equivalence (the recorder-backed
// LoadMonitor/TimeSeries views must render byte-for-byte what the frozen
// pre-refactor implementations produced for the same data) and the
// zero-allocation steady-state guarantee of the columnar sampling path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "core/simulator.hpp"
#include "legacy_metrics.hpp"
#include "stats/metrics_recorder.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it, so
// a test can assert that a code region performed zero heap allocations.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// The replacement operators pair malloc with free; GCC cannot see through
// the replacement and warns at call sites.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace oracle::stats {
namespace {

/// Deterministic pseudo-utilization in [0, 1].
double util_sample(Rng& rng) {
  return static_cast<double>(rng.below(10'000)) / 9'999.0;
}

// ---------------------------------------------------------------------------
// Equivalence against the frozen pre-refactor implementations
// ---------------------------------------------------------------------------

TEST(MetricsRecorderEquivalence, FramesMatchLegacyByteForByte) {
  constexpr std::uint32_t kRows = 6, kCols = 8;
  constexpr std::uint32_t kPes = kRows * kCols;
  constexpr std::size_t kFrames = 37;

  Rng rng(2026);
  bench::legacy::LoadMonitor legacy(kPes);
  MetricsRecorder rec;
  rec.reserve(kPes, kFrames);

  for (std::size_t f = 0; f < kFrames; ++f) {
    const sim::SimTime t = static_cast<sim::SimTime>(50 * (f + 1));
    std::vector<double> frame(kPes);
    const auto ref = rec.begin_frame(t);
    for (std::uint32_t pe = 0; pe < kPes; ++pe) {
      const double u = util_sample(rng);
      frame[pe] = u;
      ref.utilization[pe] = u;
    }
    legacy.add_frame(t, std::move(frame));
  }

  const LoadMonitor view = rec.load_monitor();
  ASSERT_EQ(view.frames(), legacy.frames());
  ASSERT_EQ(view.num_pes(), legacy.num_pes());
  for (std::size_t f = 0; f < kFrames; ++f) {
    EXPECT_EQ(view.time_of(f), legacy.time_of(f));
    // The rendered heat map must be byte-identical.
    EXPECT_EQ(view.render_frame(f, kRows, kCols),
              legacy.render_frame(f, kRows, kCols))
        << "frame " << f;
  }
  for (std::uint32_t pe = 0; pe < kPes; pe += 7)
    EXPECT_EQ(view.pe_series(pe), legacy.pe_series(pe)) << "pe " << pe;
}

TEST(MetricsRecorderEquivalence, SeriesCsvMatchesLegacyByteForByte) {
  Rng rng(77);
  bench::legacy::TimeSeries legacy("utilization_percent");
  MetricsRecorder rec;
  const SeriesId id = rec.add_series("utilization_percent", 64);

  for (std::size_t i = 0; i < 200; ++i) {
    const sim::SimTime t = static_cast<sim::SimTime>(50 * (i + 1));
    const double v = util_sample(rng) * 100.0;
    legacy.add(t, v);
    rec.append(id, t, v);
  }

  const TimeSeries view = rec.series(id);
  ASSERT_EQ(view.size(), legacy.size());
  EXPECT_EQ(view.name(), legacy.name());
  EXPECT_EQ(view.to_csv(), legacy.to_csv());
  EXPECT_DOUBLE_EQ(view.mean_value(), legacy.mean_value());
  EXPECT_DOUBLE_EQ(view.max_value(), legacy.max_value());
  for (std::size_t i = 0; i < view.size(); i += 17) {
    EXPECT_EQ(view.time_at(i), legacy.time_at(i));
    EXPECT_DOUBLE_EQ(view.value_at(i), legacy.value_at(i));
  }
}

TEST(MetricsRecorderEquivalence, ShadeRampIdentical) {
  for (double u = -0.5; u <= 1.5; u += 0.01)
    ASSERT_EQ(LoadMonitor::shade(u), bench::legacy::LoadMonitor::shade(u));
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------------

TEST(MetricsRecorderAllocation, SteadyStateSamplingAllocatesNothing) {
  constexpr std::uint32_t kPes = 100;
  constexpr std::size_t kFrames = 400;

  MetricsRecorder rec;
  rec.reserve(kPes, kFrames);
  const SeriesId util = rec.add_series("utilization_percent", kFrames);
  const CounterId tx = rec.add_counter("goal_transmissions");

  Rng rng(5);
  const std::uint64_t before = g_allocations.load();
  for (std::size_t f = 0; f < kFrames; ++f) {
    const sim::SimTime t = static_cast<sim::SimTime>(50 * (f + 1));
    const auto ref = rec.begin_frame(t);
    double sum = 0.0;
    for (std::uint32_t pe = 0; pe < kPes; ++pe) {
      const double u = util_sample(rng);
      ref.utilization[pe] = u;
      ref.queue_depth[pe] = static_cast<std::int64_t>(pe % 3);
      sum += u;
    }
    rec.append(util, t, sum / kPes * 100.0);
    rec.add(tx, 3);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "sampling inside reserved capacity must not touch the heap";

  // The frozen legacy path allocates at least one vector per frame — the
  // contrast the refactor exists to eliminate.
  bench::legacy::LoadMonitor legacy(kPes);
  const std::uint64_t legacy_before = g_allocations.load();
  for (std::size_t f = 0; f < kFrames; ++f) {
    std::vector<double> frame(kPes, 0.5);
    legacy.add_frame(static_cast<sim::SimTime>(50 * (f + 1)),
                     std::move(frame));
  }
  const std::uint64_t legacy_after = g_allocations.load();
  EXPECT_GE(legacy_after - legacy_before, kFrames);
}

TEST(MetricsRecorderAllocation, GrowthBeyondReserveStaysCorrect) {
  MetricsRecorder rec;
  rec.reserve(4, 2);  // deliberately undersized
  for (std::size_t f = 0; f < 64; ++f) {
    const auto ref = rec.begin_frame(static_cast<sim::SimTime>(f));
    for (std::uint32_t pe = 0; pe < 4; ++pe)
      ref.utilization[pe] = static_cast<double>(f) / 64.0;
  }
  EXPECT_EQ(rec.frames(), 64u);
  EXPECT_DOUBLE_EQ(rec.utilization_frame(63)[0], 63.0 / 64.0);
  EXPECT_EQ(rec.load_monitor().frames(), 64u);
}

// ---------------------------------------------------------------------------
// End-to-end: a sampled run surfaces its recorder in the RunResult
// ---------------------------------------------------------------------------

TEST(MetricsRecorderEndToEnd, RunResultCarriesColumnsAndCounters) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:4x4";
  cfg.strategy = "cwn:radius=3,horizon=1";
  cfg.workload = "fib:10";
  cfg.machine.sample_interval = 40;
  cfg.machine.monitor_per_pe = true;
  const auto r = core::run_experiment(cfg);

  // Counters mirror the scalar result fields.
  EXPECT_EQ(r.metrics.counter_value("goal_transmissions"),
            r.goal_transmissions);
  EXPECT_EQ(r.metrics.counter_value("response_transmissions"),
            r.response_transmissions);
  EXPECT_EQ(r.metrics.counter_value("control_transmissions"),
            r.control_transmissions);

  // Frame columns and the series sample the same instants.
  const auto monitor = r.load_monitor();
  const auto series = r.utilization_series();
  ASSERT_GT(monitor.frames(), 0u);
  ASSERT_EQ(series.size(), monitor.frames());
  for (std::size_t f = 0; f < monitor.frames(); ++f)
    EXPECT_EQ(monitor.time_of(f), series.time_at(f));
}

}  // namespace
}  // namespace oracle::stats
