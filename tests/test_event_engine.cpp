// Tests for the allocation-free event engine introduced with the inline-
// callback scheduler: util::InlineFunction semantics, util::RingQueue,
// machine::MessagePool, scheduler stress against a reference model
// (including the timing-wheel / overflow-heap boundary), handle-generation
// reuse, and the golden guarantee that batch JSONL output is byte-identical
// to the pre-refactor std::function + binary-heap engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/presets.hpp"
#include "core/sweep.hpp"
#include "exp/result_sink.hpp"
#include "machine/machine.hpp"
#include "sim/scheduler.hpp"
#include "util/inline_function.hpp"
#include "util/ring_queue.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace oracle {
namespace {

// ------------------------------------------------------- InlineFunction --

TEST(InlineFunction, EmptyByDefaultAndAfterReset) {
  util::InlineFunction<int(), 48> f;
  EXPECT_FALSE(static_cast<bool>(f));
  f = [] { return 7; };
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 7);
  f.reset();
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f == nullptr);
}

TEST(InlineFunction, MoveTransfersOwnership) {
  int hits = 0;
  util::InlineFunction<void(), 48> a = [&hits] { ++hits; };
  util::InlineFunction<void(), 48> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: moved-from is empty
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunction, NonTrivialCallableDestroyed) {
  // A shared_ptr capture is non-trivial: the ops-table path must run its
  // destructor on reset and exactly once.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  {
    util::InlineFunction<int(), 48> f = [token] { return *token; };
    token.reset();
    EXPECT_EQ(f(), 42);
    EXPECT_FALSE(watch.expired());
    util::InlineFunction<int(), 48> g = std::move(f);
    EXPECT_EQ(g(), 42);
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunction, EmplaceReplacesInPlace) {
  util::InlineFunction<int(), 48> f = [] { return 1; };
  f.emplace([] { return 2; });
  EXPECT_EQ(f(), 2);
}

TEST(InlineFunction, PassesArguments) {
  util::InlineFunction<int(int, int), 16> add = [](int a, int b) {
    return a + b;
  };
  EXPECT_EQ(add(2, 40), 42);
}

// ------------------------------------------------------------ RingQueue --

TEST(RingQueue, FifoAcrossGrowthAndWrap) {
  util::RingQueue<int> q;
  // Interleave pushes and pops so head wraps around the backing buffer.
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) q.push_back(next_push++);
    for (int i = 0; i < 2; ++i) EXPECT_EQ(q.pop_front(), next_pop++);
  }
  while (!q.empty()) EXPECT_EQ(q.pop_front(), next_pop++);
  EXPECT_EQ(next_pop, next_push);
}

TEST(RingQueue, EraseAtPreservesOrder) {
  util::RingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push_back(i);
  q.erase_at(0);   // shift-short side: front
  q.erase_at(8);   // back (now 9 elements, last index 8)
  q.erase_at(3);   // middle
  std::vector<int> rest;
  while (!q.empty()) rest.push_back(q.pop_front());
  EXPECT_EQ(rest, (std::vector<int>{1, 2, 3, 5, 6, 7, 8}));
}

TEST(RingQueue, EraseAtAfterHeadWrapFrontMiddleBack) {
  // Drive head_ past the end of the 8-slot backing buffer so the live
  // range wraps, then erase at the front, middle, and back of the wrapped
  // range — the left-shift and right-shift paths both cross the seam.
  for (int erase_pos : {0, 2, 4}) {  // front, middle, back (5 live elements)
    util::RingQueue<int> q;
    for (int i = 0; i < 8; ++i) q.push_back(i);      // fill to capacity 8
    for (int i = 0; i < 6; ++i) q.pop_front();       // head_ = 6
    for (int i = 8; i < 11; ++i) q.push_back(i);     // live: 6..10, wrapped
    ASSERT_EQ(q.size(), 5u);

    std::vector<int> expected = {6, 7, 8, 9, 10};
    q.erase_at(static_cast<std::size_t>(erase_pos));
    expected.erase(expected.begin() + erase_pos);

    std::vector<int> rest;
    while (!q.empty()) rest.push_back(q.pop_front());
    EXPECT_EQ(rest, expected) << "erase_at(" << erase_pos << ") after wrap";
  }
}

TEST(RingQueue, EraseAtMatchesReferenceModelUnderChurn) {
  // Exhaustive-ish regression: every erase position against a std::vector
  // reference model while the head position churns across the buffer.
  util::RingQueue<int> q;
  std::vector<int> model;
  int next = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 3; ++i) {
      q.push_back(next);
      model.push_back(next);
      ++next;
    }
    const std::size_t at = static_cast<std::size_t>(round) % q.size();
    q.erase_at(at);
    model.erase(model.begin() + static_cast<std::ptrdiff_t>(at));
    if (round % 3 == 0) {
      ASSERT_EQ(q.pop_front(), model.front());
      model.erase(model.begin());
    }
    ASSERT_EQ(q.size(), model.size());
    for (std::size_t i = 0; i < model.size(); ++i)
      ASSERT_EQ(q[i], model[i]) << "round " << round << " index " << i;
  }
}

TEST(RingQueue, EraseAtSingleElementAndMoveOnlyPayloads) {
  // The i == 0 / i == size-1 fast paths must reset the vacated slot, so a
  // move-only resource type is actually released, not retained.
  util::RingQueue<std::unique_ptr<int>> q;
  q.push_back(std::make_unique<int>(1));
  q.erase_at(0);
  EXPECT_TRUE(q.empty());

  for (int i = 0; i < 5; ++i) q.push_back(std::make_unique<int>(i));
  q.erase_at(4);  // back fast path
  q.erase_at(1);  // left-shift path (i < size - i - 1)
  q.erase_at(2);  // back fast path again (now the last index)
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(*q[0], 0);
  EXPECT_EQ(*q[1], 2);
}

TEST(RingQueue, ReservePreallocates) {
  util::RingQueue<int> q;
  q.reserve(100);
  const std::size_t cap = q.capacity();
  EXPECT_GE(cap, 100u);
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.capacity(), cap);  // no regrow happened
}

// ---------------------------------------------------------- MessagePool --

TEST(MessagePool, SlotsAreRecycled) {
  machine::MessagePool pool;
  const std::uint32_t a = pool.put(machine::Message::control(1, 10));
  const std::uint32_t b = pool.put(machine::Message::control(2, 20));
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.in_flight(), 2u);
  EXPECT_EQ(pool.take(a).ctrl_value, 10);
  const std::uint32_t c = pool.put(machine::Message::control(3, 30));
  EXPECT_EQ(c, a);  // freed slot reused
  EXPECT_EQ(pool.at(c).ctrl_value, 30);
  pool.at(c).ctrl_value = 31;  // in-place mutation (multi-hop forwarding)
  EXPECT_EQ(pool.take(c).ctrl_value, 31);
  pool.release(b);
  EXPECT_EQ(pool.in_flight(), 0u);
}

// ------------------------------------------- scheduler: stress vs model --

/// Reference model: the (time, seq) total order the scheduler promises.
struct ModelEvent {
  sim::SimTime time;
  std::uint64_t seq;
  int tag;
};

TEST(SchedulerStress, InterleavedScheduleCancelMatchesReferenceModel) {
  // Randomized schedule/cancel interleaving, with delays spanning the
  // timing wheel and the overflow heap (> 1024 ticks ahead), checked
  // against a sort-by-(time, seq) reference. Seeded: failures reproduce.
  Rng rng(20260729);
  sim::Scheduler sched;
  std::vector<int> fired;
  std::vector<ModelEvent> expected;
  std::vector<std::pair<sim::EventHandle, ModelEvent>> pending;
  std::uint64_t seq = 0;

  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t action = rng.below(10);
    if (action < 7 || pending.empty()) {
      // Mix near (wheel), boundary, and far (overflow) delays.
      const std::uint32_t kind = rng.below(4);
      const sim::Duration delay =
          kind == 0   ? static_cast<sim::Duration>(rng.below(8))
          : kind == 1 ? static_cast<sim::Duration>(rng.below(1024))
          : kind == 2 ? static_cast<sim::Duration>(1000 + rng.below(64))
                      : static_cast<sim::Duration>(rng.below(5000));
      const ModelEvent ev{static_cast<sim::SimTime>(delay), seq++, i};
      auto handle = sched.schedule_at(ev.time, [&fired, tag = ev.tag] {
        fired.push_back(tag);
      });
      pending.emplace_back(handle, ev);
    } else {
      const std::size_t victim = rng.below(
          static_cast<std::uint32_t>(pending.size()));
      EXPECT_TRUE(sched.cancel(pending[victim].first));
      EXPECT_FALSE(sched.cancel(pending[victim].first));  // double-cancel
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  for (const auto& [handle, ev] : pending) expected.push_back(ev);
  EXPECT_EQ(sched.pending(), expected.size());

  sched.run();

  std::sort(expected.begin(), expected.end(),
            [](const ModelEvent& a, const ModelEvent& b) {
              return a.time != b.time ? a.time < b.time : a.seq < b.seq;
            });
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(fired[i], expected[i].tag) << "at dispatch position " << i;
}

TEST(SchedulerStress, CancellationDuringRunMatchesModel) {
  // Events cancel other pending events from inside callbacks.
  sim::Scheduler sched;
  std::vector<int> fired;
  sim::EventHandle victim_near{};
  sim::EventHandle victim_far{};
  victim_near = sched.schedule_at(50, [&] { fired.push_back(-1); });
  victim_far = sched.schedule_at(3000, [&] { fired.push_back(-2); });
  sched.schedule_at(10, [&] {
    fired.push_back(1);
    EXPECT_TRUE(sched.cancel(victim_near));
    EXPECT_TRUE(sched.cancel(victim_far));
  });
  sched.schedule_at(60, [&] { fired.push_back(2); });
  sched.schedule_at(3100, [&] { fired.push_back(3); });
  sched.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

// ------------------------------------------------ handle-generation map --

TEST(SchedulerHandles, StaleHandleAfterSlotReuseFails) {
  sim::Scheduler sched;
  // Fire one event so its slot returns to the free list.
  const sim::EventHandle first = sched.schedule_at(1, [] {});
  sched.run();
  EXPECT_FALSE(sched.cancel(first));
  // The next event reuses the slot with a bumped generation: the stale
  // handle must still fail and the fresh one succeed.
  const sim::EventHandle second = sched.schedule_at(10, [] {});
  EXPECT_NE(first.id, second.id);
  EXPECT_FALSE(sched.cancel(first));
  EXPECT_TRUE(sched.cancel(second));
  EXPECT_FALSE(sched.cancel(second));
}

TEST(SchedulerHandles, CancelledSlotReuseKeepsHandlesDistinct) {
  sim::Scheduler sched;
  std::vector<sim::EventHandle> handles;
  // Many schedule/cancel cycles force slot reuse; every stale handle must
  // stay dead.
  for (int round = 0; round < 100; ++round) {
    const sim::EventHandle h = sched.schedule_at(5, [] {});
    EXPECT_TRUE(sched.cancel(h));
    handles.push_back(h);
  }
  for (const auto& h : handles) EXPECT_FALSE(sched.cancel(h));
  EXPECT_EQ(sched.pending(), 0u);
}

// -------------------------------------------------- FIFO across the engine --

TEST(SchedulerFifo, TieBreakHoldsAcrossWheelAndOverflow) {
  // Events for one far-future instant scheduled early sit in the overflow
  // heap; as the wheel advances they migrate into a bucket where later
  // (higher-seq) events for the same instant are appended directly. FIFO
  // must hold across that boundary.
  sim::Scheduler sched;
  std::vector<int> order;
  const sim::SimTime target = 2000;  // beyond the wheel horizon at t=0
  for (int i = 0; i < 5; ++i)
    sched.schedule_at(target, [&order, i] { order.push_back(i); });
  // An intermediate event advances the wheel past target - horizon, then
  // appends more events for the same instant.
  sched.schedule_at(1500, [&] {
    for (int i = 5; i < 10; ++i)
      sched.schedule_at(target, [&order, i] { order.push_back(i); });
  });
  sched.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerFifo, ReserveDoesNotDisturbOrdering) {
  sim::Scheduler sched;
  sched.reserve(4096);
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i)
    sched.schedule_at(i % 3, [&order, i] { order.push_back(i); });
  sched.run();
  ASSERT_EQ(order.size(), 1000u);
  // Within each time bucket, insertion order must be preserved.
  std::vector<int> expected;
  for (int t = 0; t < 3; ++t)
    for (int i = 0; i < 1000; ++i)
      if (i % 3 == t) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

// ------------------------------------------------------- golden output --

/// The exact sweep the PR-1 engine ran to capture the golden below:
/// paper base config, {grid:5x5, grid:6x6, dlm:5:5x5} x {cwn, gm, random}
/// x fib:9 x seeds {1, 2} through the batch engine.
exp::BatchOutcome run_golden_sweep(std::ostream& os) {
  exp::BatchOptions opt;
  opt.collect = false;
  opt.jsonl_stream = &os;
  return core::SweepBuilder(core::paper::base_config())
      .topologies({"grid:5x5", "grid:6x6", "dlm:5:5x5"})
      .strategies({"cwn", "gm", "random"})
      .workloads({"fib:9"})
      .seeds({1, 2})
      .run_batch(opt);
}

TEST(GoldenBatchOutput, ByteIdenticalToPreRefactorEngine) {
  // Captured from the std::function + binary-heap engine (commit adddc24,
  // before the inline-callback rewrite): 18 JSONL records, 10453 bytes,
  // FNV-1a 0xa5230cf18d7c7a9d. The rewritten engine must reproduce them
  // byte for byte — same event order, same statistics, same rendering.
  std::ostringstream os;
  const auto outcome = run_golden_sweep(os);
  EXPECT_TRUE(outcome.report.ok());
  const std::string bytes = os.str();
  EXPECT_EQ(bytes.size(), 10453u);
  EXPECT_EQ(fnv1a64(bytes), 0xa5230cf18d7c7a9dULL);
  EXPECT_EQ(outcome.report.total_events, [&] {
    // The record stream carries per-run events_executed; cross-check the
    // report aggregate against it.
    std::uint64_t sum = 0;
    std::istringstream in(bytes);
    std::string line;
    while (std::getline(in, line)) {
      const auto rec = exp::parse_jsonl_record(line);
      EXPECT_TRUE(rec.has_value());
      if (rec) sum += rec->result.events_executed;
    }
    return sum;
  }());
}

}  // namespace
}  // namespace oracle
