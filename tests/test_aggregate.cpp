// exp::Aggregator: grouping by grid point, mean/CI/percentile math against
// hand-computed fixtures, and a multi-seed aggregate round-trip through a
// JSONL store written by the batch engine.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "exp/aggregate.hpp"
#include "exp/batch.hpp"
#include "exp/job.hpp"
#include "exp/result_sink.hpp"

namespace oracle::exp {
namespace {

stats::RunResult point(const std::string& topology,
                       const std::string& strategy, std::uint64_t seed,
                       double speedup) {
  stats::RunResult r;
  r.topology = topology;
  r.strategy = strategy;
  r.workload = "fib:13";
  r.num_pes = 100;
  r.seed = seed;
  r.speedup = speedup;
  r.avg_utilization = speedup / 100.0;
  r.completion_time = static_cast<sim::SimTime>(10'000.0 / speedup);
  return r;
}

// ---------------------------------------------------------------------------
// Statistics fixtures (hand-computed)
// ---------------------------------------------------------------------------

TEST(Aggregate, StudentTCriticalValues) {
  EXPECT_DOUBLE_EQ(student_t95(0), 0.0);
  EXPECT_DOUBLE_EQ(student_t95(1), 12.706);
  EXPECT_DOUBLE_EQ(student_t95(7), 2.365);
  EXPECT_DOUBLE_EQ(student_t95(30), 2.042);
  EXPECT_DOUBLE_EQ(student_t95(31), 1.960);
  EXPECT_DOUBLE_EQ(student_t95(10'000), 1.960);
}

TEST(Aggregate, TextbookMomentsAndConfidenceInterval) {
  // The classic sample {2,4,4,4,5,5,7,9}: mean 5, sample variance 32/7.
  Aggregator agg;
  const double samples[] = {2, 4, 4, 4, 5, 5, 7, 9};
  std::uint64_t seed = 1;
  for (const double s : samples)
    agg.add(point("grid-10x10", "cwn", seed++, s));

  const auto groups = agg.summarize();
  ASSERT_EQ(groups.size(), 1u);
  const MetricSummary* m = groups[0].metric("speedup");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->n, 8u);
  EXPECT_DOUBLE_EQ(m->mean, 5.0);
  const double stddev = std::sqrt(32.0 / 7.0);  // Bessel-corrected
  EXPECT_DOUBLE_EQ(m->stddev, stddev);
  // 95% CI half-width: t_{.975, df=7} * s / sqrt(n).
  EXPECT_DOUBLE_EQ(m->ci95, 2.365 * stddev / std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(m->min, 2.0);
  EXPECT_DOUBLE_EQ(m->max, 9.0);
}

TEST(Aggregate, SingleSampleHasNoInterval) {
  Aggregator agg;
  agg.add(point("grid-10x10", "cwn", 1, 42.0));
  const auto groups = agg.summarize();
  const MetricSummary* m = groups[0].metric("speedup");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->n, 1u);
  EXPECT_DOUBLE_EQ(m->mean, 42.0);
  EXPECT_DOUBLE_EQ(m->stddev, 0.0);
  EXPECT_DOUBLE_EQ(m->ci95, 0.0);
}

TEST(Aggregate, PercentilesInterpolateLinearly) {
  // Samples 10,20,...,100: R-7 percentiles are linear in rank.
  Aggregator agg;
  for (int i = 1; i <= 10; ++i)
    agg.add(point("grid-10x10", "cwn", static_cast<std::uint64_t>(i),
                  10.0 * i));
  const auto groups = agg.summarize();
  const MetricSummary* m = groups[0].metric("speedup");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(m->percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(m->percentile(50), 55.0);   // rank 4.5
  EXPECT_DOUBLE_EQ(m->percentile(25), 32.5);   // rank 2.25
  EXPECT_DOUBLE_EQ(m->percentile(90), 91.0);   // rank 8.1
}

// ---------------------------------------------------------------------------
// Grouping
// ---------------------------------------------------------------------------

TEST(Aggregate, GroupsByGridPointAcrossSeeds) {
  Aggregator agg;
  // Interleave two grid points; groups keep first-seen order.
  agg.add(point("grid-10x10", "cwn", 1, 50.0));
  agg.add(point("grid-10x10", "gm", 1, 30.0));
  agg.add(point("grid-10x10", "cwn", 2, 60.0));
  agg.add(point("grid-10x10", "gm", 2, 40.0));
  EXPECT_EQ(agg.rows(), 4u);
  EXPECT_EQ(agg.groups(), 2u);

  const auto groups = agg.summarize();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].strategy, "cwn");
  EXPECT_EQ(groups[0].runs, 2u);
  EXPECT_DOUBLE_EQ(groups[0].metric("speedup")->mean, 55.0);
  EXPECT_EQ(groups[1].strategy, "gm");
  EXPECT_DOUBLE_EQ(groups[1].metric("speedup")->mean, 35.0);
  EXPECT_NE(groups[0].key, groups[1].key);
}

TEST(Aggregate, MalformedLinesAreSkippedNotFatal) {
  Aggregator agg;
  ExperimentJob job;
  job.index = 0;
  job.config.topology = "grid:4x4";
  job.config.strategy = "cwn";
  job.config.workload = "fib:8";
  job.content_hash = job_content_hash(job.config);
  const auto r = point("grid-4x4", "cwn", 1, 10.0);

  EXPECT_TRUE(agg.add_line(jsonl_record(job, r)));
  EXPECT_FALSE(agg.add_line("{\"job\":broken"));
  EXPECT_TRUE(agg.add_line(""));  // blank lines are ignored
  EXPECT_EQ(agg.rows(), 1u);
  EXPECT_EQ(agg.skipped_lines(), 1u);
}

TEST(Aggregate, CsvAndTableRenderEveryGroup) {
  Aggregator agg;
  agg.add(point("grid-10x10", "cwn", 1, 50.0));
  agg.add(point("grid-10x10", "cwn", 2, 60.0));
  const auto groups = agg.summarize();

  const std::string csv = Aggregator::to_csv(groups);
  EXPECT_NE(csv.find("topology,strategy,workload,num_pes,metric,n,mean,"
                     "stddev,ci95,min,max,p50,p90,p99"),
            std::string::npos);
  EXPECT_NE(csv.find("grid-10x10,cwn,fib:13,100,speedup,2,55,"),
            std::string::npos);

  const std::string table = Aggregator::to_table(groups, "speedup");
  EXPECT_NE(table.find("grid-10x10"), std::string::npos);
  EXPECT_NE(table.find("55"), std::string::npos);
  // Unknown metrics render an empty table rather than crashing.
  EXPECT_EQ(Aggregator::to_table(groups, "no_such_metric").find("grid"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Multi-seed round trip through a JSONL store
// ---------------------------------------------------------------------------

TEST(Aggregate, MultiSeedRoundTripThroughStore) {
  const std::string path = "aggregate_roundtrip_test.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".ckpt").c_str());

  core::ExperimentConfig base;
  base.topology = "grid:4x4";
  base.workload = "fib:9";
  core::SweepBuilder sweep(base);
  sweep.strategies({"cwn:radius=3,horizon=1", "random"}).seeds({1, 2, 3, 4});

  exp::BatchOptions opt;
  opt.jsonl_path = path;
  const auto outcome = sweep.run_batch(opt);
  ASSERT_TRUE(outcome.report.ok());
  ASSERT_EQ(outcome.results.size(), 8u);

  const auto agg = Aggregator::from_jsonl_file(path);
  EXPECT_EQ(agg.rows(), 8u);
  EXPECT_EQ(agg.skipped_lines(), 0u);
  const auto groups = agg.summarize();
  ASSERT_EQ(groups.size(), 2u);

  // Each grid point aggregates its four seeds; the mean must equal the
  // arithmetic mean of the in-memory results (store round trip is exact:
  // %.17g survives strtod).
  for (std::size_t g = 0; g < 2; ++g) {
    EXPECT_EQ(groups[g].runs, 4u);
    const MetricSummary* m = groups[g].metric("speedup");
    ASSERT_NE(m, nullptr);
    double sum = 0.0;
    for (std::size_t s = 0; s < 4; ++s)
      sum += outcome.results[g * 4 + s].speedup;
    EXPECT_DOUBLE_EQ(m->mean, sum / 4.0);
    // completion_time aggregates too, and min <= mean <= max.
    const MetricSummary* ct = groups[g].metric("completion_time");
    ASSERT_NE(ct, nullptr);
    EXPECT_LE(ct->min, ct->mean);
    EXPECT_LE(ct->mean, ct->max);
  }

  std::remove(path.c_str());
  std::remove((path + ".ckpt").c_str());
}

TEST(Aggregate, MissingStoreThrows) {
  EXPECT_THROW(Aggregator::from_jsonl_file("definitely_missing_store.jsonl"),
               SimulationError);
  EXPECT_THROW(Aggregator::from_jsonl_files({"also_missing_a.jsonl",
                                             "also_missing_b.jsonl"}),
               SimulationError);
}

// ----------------------------------------------------------- edge cases --

TEST(Aggregate, SingleSampleGroupsReportZeroSpreadConsistently) {
  // One seed per grid point: stddev and the CI half-width are undefined;
  // both must come back as exactly 0.0 (never garbage or a table misread),
  // and min == mean == max == the sample.
  Aggregator agg;
  agg.add(point("grid-10x10", "cwn", 1, 42.5));
  const auto groups = agg.summarize();
  ASSERT_EQ(groups.size(), 1u);
  const MetricSummary* m = groups[0].metric("speedup");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->n, 1u);
  EXPECT_DOUBLE_EQ(m->mean, 42.5);
  EXPECT_DOUBLE_EQ(m->stddev, 0.0);
  EXPECT_DOUBLE_EQ(m->ci95, 0.0);
  EXPECT_DOUBLE_EQ(m->min, 42.5);
  EXPECT_DOUBLE_EQ(m->max, 42.5);
  // Every percentile of a single sample is that sample.
  EXPECT_DOUBLE_EQ(m->percentile(0), 42.5);
  EXPECT_DOUBLE_EQ(m->percentile(50), 42.5);
  EXPECT_DOUBLE_EQ(m->percentile(100), 42.5);
}

TEST(Aggregate, PercentileClampsOutOfRangeAndPropagatesNaN) {
  Aggregator agg;
  std::uint64_t seed = 1;
  for (const double v : {10.0, 20.0, 30.0})
    agg.add(point("grid-10x10", "cwn", seed++, v));
  const auto groups = agg.summarize();
  const MetricSummary* m = groups[0].metric("speedup");
  ASSERT_NE(m, nullptr);
  // p outside [0, 100] clamps to the extremes rather than indexing past
  // the sample vector.
  EXPECT_DOUBLE_EQ(m->percentile(-5.0), 10.0);
  EXPECT_DOUBLE_EQ(m->percentile(105.0), 30.0);
  EXPECT_DOUBLE_EQ(m->percentile(-1e300), 10.0);
  EXPECT_DOUBLE_EQ(m->percentile(1e300), 30.0);
  // NaN has no rank: it propagates instead of hitting an undefined cast.
  EXPECT_TRUE(std::isnan(m->percentile(std::nan(""))));
  // An empty summary stays at the documented 0.0.
  MetricSummary empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);
}

TEST(Aggregate, LargeReplicationCountsUseTheAsymptoticCriticalValue) {
  // 40 replications → df = 39 > 30: the CI must use the 1.960 asymptote
  // (a read past the 30-entry t-table would produce garbage here).
  Aggregator agg;
  for (std::uint64_t s = 1; s <= 40; ++s)
    agg.add(point("grid-10x10", "cwn", s, static_cast<double>(s)));
  const auto groups = agg.summarize();
  const MetricSummary* m = groups[0].metric("speedup");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->n, 40u);
  const double expected =
      1.960 * m->stddev / std::sqrt(static_cast<double>(m->n));
  EXPECT_DOUBLE_EQ(m->ci95, expected);
}

// ------------------------------------------------------------ multi-store --

TEST(Aggregate, MultipleStoresPoolIntoOneSweep) {
  // Two "hosts" each hold half the seeds of the same grid point; reading
  // both stores must pool all samples into one group, independent of
  // store order.
  const auto path_a = testing::TempDir() + "oracle_agg_host_a.jsonl";
  const auto path_b = testing::TempDir() + "oracle_agg_host_b.jsonl";
  auto write_store = [](const std::string& path,
                        std::vector<std::pair<std::uint64_t, double>> runs) {
    std::ofstream out(path, std::ios::trunc);
    for (const auto& [seed, speedup] : runs) {
      ExperimentJob job;
      job.index = seed;
      job.content_hash = seed;
      out << jsonl_record(job, point("grid-10x10", "cwn", seed, speedup))
          << '\n';
    }
  };
  write_store(path_a, {{1, 10.0}, {2, 20.0}});
  write_store(path_b, {{3, 30.0}, {4, 40.0}});

  const auto agg = Aggregator::from_jsonl_files({path_a, path_b});
  EXPECT_EQ(agg.rows(), 4u);
  const auto groups = agg.summarize();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].runs, 4u);
  const MetricSummary* m = groups[0].metric("speedup");
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(m->mean, 25.0);
  EXPECT_DOUBLE_EQ(m->min, 10.0);
  EXPECT_DOUBLE_EQ(m->max, 40.0);

  // Store order must not change the statistics.
  const auto swapped = Aggregator::from_jsonl_files({path_b, path_a});
  const auto groups2 = swapped.summarize();
  ASSERT_EQ(groups2.size(), 1u);
  EXPECT_DOUBLE_EQ(groups2[0].metric("speedup")->mean, 25.0);

  // Overlapping stores (e.g. the merged canonical store plus a kept
  // per-shard store) must not double-count runs: records are deduped by
  // content hash, so n — and the confidence interval — stay honest.
  const auto overlap =
      Aggregator::from_jsonl_files({path_a, path_b, path_a});
  EXPECT_EQ(overlap.rows(), 4u);
  EXPECT_EQ(overlap.duplicate_rows(), 2u);
  const auto groups3 = overlap.summarize();
  ASSERT_EQ(groups3.size(), 1u);
  EXPECT_EQ(groups3[0].runs, 4u);
  EXPECT_DOUBLE_EQ(groups3[0].metric("speedup")->mean, 25.0);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace oracle::exp
