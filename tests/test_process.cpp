// Tests for the coroutine Process layer and the Simulation wrapper.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/process.hpp"
#include "sim/simulation.hpp"

namespace oracle::sim {
namespace {

Process ticker(std::vector<SimTime>& log, Scheduler& sched, int n,
               Duration step) {
  for (int i = 0; i < n; ++i) {
    co_await hold(step);
    log.push_back(sched.now());
  }
}

TEST(Process, HoldAdvancesSimTime) {
  Simulation sim;
  std::vector<SimTime> log;
  sim.spawn(ticker(log, sim.scheduler(), 3, 10));
  sim.run();
  EXPECT_EQ(log, (std::vector<SimTime>{10, 20, 30}));
}

TEST(Process, MultipleProcessesInterleave) {
  Simulation sim;
  std::vector<SimTime> a, b;
  sim.spawn(ticker(a, sim.scheduler(), 2, 7));
  sim.spawn(ticker(b, sim.scheduler(), 3, 5));
  sim.run();
  EXPECT_EQ(a, (std::vector<SimTime>{7, 14}));
  EXPECT_EQ(b, (std::vector<SimTime>{5, 10, 15}));
}

Process zero_hold(bool& ran, Scheduler&) {
  co_await hold(0);
  ran = true;
}

TEST(Process, ZeroHoldStillRuns) {
  Simulation sim;
  bool ran = false;
  sim.spawn(zero_hold(ran, sim.scheduler()));
  sim.run();
  EXPECT_TRUE(ran);
}

Process thrower(Scheduler&) {
  co_await hold(1);
  throw std::runtime_error("boom");
}

TEST(Process, ExceptionIsCaptured) {
  Simulation sim;
  sim.spawn(thrower(sim.scheduler()));
  sim.run();  // the coroutine's exception is stored, not propagated here
  // Re-running is fine; the failed process simply stopped.
  SUCCEED();
}

Process body_only(int& count) {
  ++count;
  co_return;
}

TEST(Process, RunsToCompletionOnSpawnIfNoHold) {
  Simulation sim;
  int count = 0;
  sim.spawn(body_only(count));
  EXPECT_EQ(count, 1);  // ran eagerly at spawn
}

TEST(Simulation, SamplerFiresWhileWorkPending) {
  Simulation sim;
  std::vector<SimTime> samples;
  // Keep the sim alive until t = 50 with a chain of events.
  std::function<void()> chain = [&] {
    if (sim.now() < 50) sim.scheduler().schedule_after(10, chain);
  };
  sim.scheduler().schedule_at(0, chain);
  sim.add_sampler(10, [&](SimTime t) { samples.push_back(t); });
  sim.run();
  ASSERT_GE(samples.size(), 4u);
  EXPECT_EQ(samples.front(), 0);
  for (std::size_t i = 1; i < samples.size(); ++i)
    EXPECT_EQ(samples[i] - samples[i - 1], 10);
}

TEST(Simulation, MakeResourceOwnsResources) {
  Simulation sim;
  Resource& r = sim.make_resource("ch", 2);
  EXPECT_EQ(r.capacity(), 2u);
  EXPECT_EQ(sim.resources().size(), 1u);
  r.acquire_for(5, nullptr);
  sim.run();
  EXPECT_EQ(r.busy_time(), 5);
}

}  // namespace
}  // namespace oracle::sim
