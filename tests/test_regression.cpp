// Golden-value regression suite. Runs are pure functions of their config
// (DESIGN.md invariant 7), so these exact numbers must not drift unless a
// strategy or machine-model change is *intentional* — in which case update
// the constants and re-validate EXPERIMENTS.md against the paper.
//
// Scenario: grid:8x8, fib(13), seed 42, paper cost model.

#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace oracle {
namespace {

stats::RunResult golden_run(const char* strategy) {
  core::ExperimentConfig cfg;  // defaults == paper::base_config values
  cfg.topology = "grid:8x8";
  cfg.strategy = strategy;
  cfg.workload = "fib:13";
  cfg.machine.seed = 42;
  return core::run_experiment(cfg);
}

TEST(Regression, CwnGolden) {
  const auto r = golden_run("cwn:radius=9,horizon=2");
  EXPECT_EQ(r.completion_time, 2169);
  EXPECT_EQ(r.goal_transmissions, 2206u);
  EXPECT_EQ(r.goals_executed, 753u);
  EXPECT_NEAR(r.avg_goal_distance, 2.93, 0.005);
}

TEST(Regression, GmGolden) {
  const auto r = golden_run("gm:hwm=2,lwm=1,interval=20");
  EXPECT_EQ(r.completion_time, 2780);
  EXPECT_EQ(r.goal_transmissions, 1085u);
  EXPECT_NEAR(r.avg_goal_distance, 1.44, 0.005);
}

TEST(Regression, AcwnGolden) {
  const auto r = golden_run("acwn:radius=9,horizon=2");
  EXPECT_EQ(r.completion_time, 2029);
  EXPECT_EQ(r.goal_transmissions, 2177u);
}

TEST(Regression, StealGolden) {
  const auto r = golden_run("steal:backoff=10");
  EXPECT_EQ(r.completion_time, 16520);
  EXPECT_EQ(r.goal_transmissions, 180u);
}

TEST(Regression, CwnBeatsGmHere) {
  // And the headline ordering embedded as a regression anchor.
  const auto cwn = golden_run("cwn:radius=9,horizon=2");
  const auto gm = golden_run("gm:hwm=2,lwm=1,interval=20");
  EXPECT_LT(cwn.completion_time, gm.completion_time);
  EXPECT_GT(cwn.goal_transmissions, gm.goal_transmissions);
}

}  // namespace
}  // namespace oracle
