// Unit tests for the SIMSCRIPT-style FIFO resource (channel model).

#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.hpp"
#include "sim/scheduler.hpp"

namespace oracle::sim {
namespace {

TEST(Resource, ServesImmediatelyWhenFree) {
  Scheduler s;
  Resource r(s, "ch");
  SimTime done = -1;
  r.acquire_for(5, [&] { done = s.now(); });
  s.run();
  EXPECT_EQ(done, 5);
}

TEST(Resource, QueuesFifoUnderContention) {
  Scheduler s;
  Resource r(s, "ch");
  // Completion callbacks are inline-capped (Resource::Callback); capture
  // one context pointer instead of three references.
  struct Ctx {
    Scheduler& s;
    std::vector<int> order;
    std::vector<SimTime> times;
  } ctx{s, {}, {}};
  for (int i = 0; i < 3; ++i) {
    r.acquire_for(10, [&ctx, i] {
      ctx.order.push_back(i);
      ctx.times.push_back(ctx.s.now());
    });
  }
  s.run();
  EXPECT_EQ(ctx.order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ctx.times, (std::vector<SimTime>{10, 20, 30}));
}

TEST(Resource, MultiServerParallelism) {
  Scheduler s;
  Resource r(s, "bus", 2);
  std::vector<SimTime> times;
  for (int i = 0; i < 4; ++i)
    r.acquire_for(10, [&] { times.push_back(s.now()); });
  s.run();
  // Two at a time: finish at 10, 10, 20, 20.
  EXPECT_EQ(times, (std::vector<SimTime>{10, 10, 20, 20}));
}

TEST(Resource, BusyTimeAccumulates) {
  Scheduler s;
  Resource r(s, "ch");
  r.acquire_for(3, nullptr);
  r.acquire_for(4, nullptr);
  s.run();
  EXPECT_EQ(r.busy_time(), 7);
  EXPECT_EQ(r.completed(), 2u);
}

TEST(Resource, UtilizationOverHorizon) {
  Scheduler s;
  Resource r(s, "ch");
  r.acquire_for(5, nullptr);
  s.run();
  EXPECT_DOUBLE_EQ(r.utilization(10), 0.5);
  EXPECT_DOUBLE_EQ(r.utilization(0), 0.0);
}

TEST(Resource, ZeroServiceTimeCompletesAtOnce) {
  Scheduler s;
  Resource r(s, "ch");
  SimTime done = -1;
  r.acquire_for(0, [&] { done = s.now(); });
  s.run();
  EXPECT_EQ(done, 0);
}

TEST(Resource, QueueDelayStatistics) {
  Scheduler s;
  Resource r(s, "ch");
  for (int i = 0; i < 3; ++i) r.acquire_for(10, nullptr);
  s.run();
  // Delays: 0, 10, 20.
  EXPECT_EQ(r.queue_delay().count(), 3u);
  EXPECT_DOUBLE_EQ(r.queue_delay().mean(), 10.0);
  EXPECT_DOUBLE_EQ(r.queue_delay().max(), 20.0);
}

TEST(Resource, InterleavedArrivals) {
  Scheduler s;
  Resource r(s, "ch");
  std::vector<SimTime> done;
  s.schedule_at(0, [&] { r.acquire_for(10, [&] { done.push_back(s.now()); }); });
  s.schedule_at(5, [&] { r.acquire_for(10, [&] { done.push_back(s.now()); }); });
  s.schedule_at(25, [&] { r.acquire_for(10, [&] { done.push_back(s.now()); }); });
  s.run();
  // Second waits for first (10 -> 20); third arrives idle (25 -> 35).
  EXPECT_EQ(done, (std::vector<SimTime>{10, 20, 35}));
}

TEST(Resource, QueueLengthVisible) {
  Scheduler s;
  Resource r(s, "ch");
  for (int i = 0; i < 5; ++i) r.acquire_for(10, nullptr);
  EXPECT_EQ(r.in_service(), 1u);
  EXPECT_EQ(r.queue_length(), 4u);
  s.run();
  EXPECT_EQ(r.in_service(), 0u);
  EXPECT_EQ(r.queue_length(), 0u);
}

}  // namespace
}  // namespace oracle::sim
