// Wide parameterized property suite: the DESIGN.md invariants checked over
// the cartesian product of strategies x workloads x topologies (small
// sizes — hundreds of runs, each a few ms).

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/runner.hpp"
#include "core/simulator.hpp"
#include "workload/workload.hpp"

namespace oracle {
namespace {

using Param = std::tuple<const char*, const char*, const char*>;

class CrossProduct : public ::testing::TestWithParam<Param> {};

TEST_P(CrossProduct, CoreInvariantsHold) {
  const auto [strategy, workload, topology] = GetParam();
  core::ExperimentConfig cfg;
  cfg.topology = topology;
  cfg.strategy = strategy;
  cfg.workload = workload;
  cfg.machine.seed = 3;
  const auto r = core::run_experiment(cfg);

  const auto wl = workload::make_workload(workload, cfg.costs);
  const auto summary = wl->summarize();

  // 1. Every goal executed exactly once.
  EXPECT_EQ(r.goals_executed, summary.total_goals);
  std::uint64_t per_pe_sum = 0;
  for (auto g : r.pe_goals) per_pe_sum += g;
  EXPECT_EQ(per_pe_sum, summary.total_goals);

  // 2/3. Work conservation and completion >= critical path.
  EXPECT_EQ(r.total_work, summary.total_work);
  EXPECT_GE(r.completion_time, summary.critical_path);

  // 4. Utilization and speedup bounds.
  EXPECT_GT(r.avg_utilization, 0.0);
  EXPECT_LE(r.avg_utilization, 1.0 + 1e-12);
  EXPECT_LE(r.speedup, static_cast<double>(r.num_pes) + 1e-9);
  const double speedup_by_work = static_cast<double>(r.total_work) /
                                 static_cast<double>(r.completion_time);
  EXPECT_NEAR(r.speedup, speedup_by_work, 1e-6);

  // Hop histogram accounts for every goal.
  EXPECT_EQ(r.goal_hops.total(), summary.total_goals);

  // Channel utilization bounded.
  EXPECT_LE(r.max_channel_utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossProduct,
    ::testing::Combine(
        ::testing::Values("cwn:radius=4,horizon=1", "gm:hwm=1,lwm=1",
                          "acwn:radius=4,horizon=1", "steal", "random",
                          "local"),
        ::testing::Values("fib:10", "dc:1:80",
                          "synthetic:seed=5,depth=8,branchmax=3",
                          "burst:phases=3,width=4"),
        ::testing::Values("grid:4x4", "dlm:4:4x4", "hypercube:4",
                          "tree:2:4", "ring:6")));

// --------------------------------------------------------------------------
// Seed replication properties
// --------------------------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SeedSweep, ResultsVaryButConserve) {
  std::vector<core::ExperimentConfig> configs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    core::ExperimentConfig cfg;
    cfg.topology = "grid:4x4";
    cfg.strategy = GetParam();
    cfg.workload = "fib:11";
    cfg.machine.seed = seed;
    configs.push_back(cfg);
  }
  const auto results = core::run_all(configs, 6);
  for (const auto& r : results)
    EXPECT_EQ(r.goals_executed, results[0].goals_executed);
  // Completion varies across seeds for randomized strategies (tie-breaks),
  // but within a sane band (no pathological seed).
  sim::SimTime min_t = results[0].completion_time, max_t = min_t;
  for (const auto& r : results) {
    min_t = std::min(min_t, r.completion_time);
    max_t = std::max(max_t, r.completion_time);
  }
  EXPECT_LE(max_t, 2 * min_t) << "seed variance too large";
}

INSTANTIATE_TEST_SUITE_P(Strategies, SeedSweep,
                         ::testing::Values("cwn:radius=4,horizon=1",
                                           "gm:hwm=1,lwm=1", "random",
                                           "steal"));

// --------------------------------------------------------------------------
// Bus-vs-link broadcast economics (the DLM advantage)
// --------------------------------------------------------------------------

TEST(BusBroadcast, DlmBroadcastReachesMoreNeighborsPerTransmission) {
  // CWN's periodic load broadcast costs one transmission per attached
  // link. On the grid that reaches <= 4 neighbors via 4 links; on the DLM
  // it reaches ~16 neighbors via 4 buses. So control transmissions per
  // (PE, cycle) are similar, while the DLM disseminates 4x the info.
  auto run = [](const char* topo) {
    core::ExperimentConfig cfg;
    cfg.topology = topo;
    cfg.strategy = "cwn:radius=4,horizon=1,interval=20";
    cfg.workload = "fib:12";
    return core::run_experiment(cfg);
  };
  const auto grid = run("grid:5x5");
  const auto dlm = run("dlm:5:5x5");
  // Same PE count and cycle cadence: control transmissions should be of
  // the same order; DLM strictly fewer links per PE here (2 buses + 2).
  EXPECT_GT(grid.control_transmissions, 0u);
  EXPECT_GT(dlm.control_transmissions, 0u);
  const double per_cycle_grid =
      static_cast<double>(grid.control_transmissions) /
      static_cast<double>(grid.completion_time);
  const double per_cycle_dlm =
      static_cast<double>(dlm.control_transmissions) /
      static_cast<double>(dlm.completion_time);
  // dlm:5:5x5 has 2 buses per PE vs the grid's ~3.2 links per PE.
  EXPECT_LT(per_cycle_dlm, per_cycle_grid);
}

}  // namespace
}  // namespace oracle
