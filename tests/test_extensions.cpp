// Tests for the extension features: k-ary tree topology, heterogeneous
// (slow) PEs, and the distribution-quality metrics.

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "topo/factory.hpp"
#include "topo/graph_algos.hpp"
#include "topo/tree.hpp"
#include "util/error.hpp"
#include "workload/fib.hpp"

namespace oracle {
namespace {

// --------------------------------------------------------------------------
// KaryTree
// --------------------------------------------------------------------------

TEST(KaryTree, NodeCounts) {
  EXPECT_EQ(topo::KaryTree::node_count(2, 1), 1u);
  EXPECT_EQ(topo::KaryTree::node_count(2, 3), 7u);
  EXPECT_EQ(topo::KaryTree::node_count(2, 5), 31u);
  EXPECT_EQ(topo::KaryTree::node_count(3, 3), 13u);
  EXPECT_EQ(topo::KaryTree::node_count(4, 4), 85u);
}

TEST(KaryTree, StructureBinaryDepth3) {
  const topo::KaryTree t(2, 3);
  EXPECT_EQ(t.num_nodes(), 7u);
  EXPECT_EQ(t.num_links(), 6u);  // n - 1 edges
  EXPECT_EQ(t.neighbors(0).size(), 2u);   // root: two children
  EXPECT_EQ(t.neighbors(1).size(), 3u);   // internal: parent + 2 children
  EXPECT_EQ(t.neighbors(3).size(), 1u);   // leaf: parent only
  EXPECT_TRUE(topo::is_connected(t));
}

TEST(KaryTree, DiameterIsTwiceDepth) {
  // Leaf -> root -> other leaf.
  EXPECT_EQ(topo::DistanceMatrix(topo::KaryTree(2, 4)).diameter(), 6u);
  EXPECT_EQ(topo::DistanceMatrix(topo::KaryTree(3, 3)).diameter(), 4u);
}

TEST(KaryTree, FactoryParsesTreeSpec) {
  EXPECT_EQ(topo::make_topology("tree:2:5")->num_nodes(), 31u);
  EXPECT_THROW(topo::make_topology("tree:2"), ConfigError);
  EXPECT_THROW(topo::make_topology("tree:0:3"), ConfigError);
}

TEST(KaryTree, StrategiesRunOnTrees) {
  for (const char* strat : {"cwn:radius=6,horizon=1", "gm", "steal"}) {
    core::ExperimentConfig cfg;
    cfg.topology = "tree:2:5";
    cfg.strategy = strat;
    cfg.workload = "fib:10";
    const auto r = core::run_experiment(cfg);
    EXPECT_EQ(r.goals_executed, workload::FibWorkload::tree_size(10)) << strat;
  }
}

// --------------------------------------------------------------------------
// Heterogeneous PEs
// --------------------------------------------------------------------------

TEST(SlowPes, HomogeneousByDefault) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:3x3";
  cfg.workload = "fib:9";
  const auto r = core::run_experiment(cfg);
  // Work conservation holds exactly when homogeneous.
  EXPECT_EQ(r.total_work,
            workload::FibWorkload(9, cfg.costs).summarize().total_work);
}

TEST(SlowPes, AllSlowScalesCompletionExactly) {
  core::ExperimentConfig base, slow;
  for (auto* c : {&base, &slow}) {
    c->topology = "grid:3x3";
    c->strategy = "local";  // sequential: completion == total work
    c->workload = "fib:8";
  }
  slow.machine.slow_pe_percent = 100;
  slow.machine.slow_factor = 3;
  const auto rb = core::run_experiment(base);
  const auto rs = core::run_experiment(slow);
  EXPECT_EQ(rs.completion_time, 3 * rb.completion_time);
}

TEST(SlowPes, DeterministicSelection) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:4x4";
  cfg.strategy = "cwn:radius=4,horizon=1";
  cfg.workload = "fib:10";
  cfg.machine.slow_pe_percent = 25;
  cfg.machine.seed = 5;
  const auto a = core::run_experiment(cfg);
  const auto b = core::run_experiment(cfg);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(SlowPes, DegradationSlowsTheRun) {
  core::ExperimentConfig base;
  base.topology = "grid:4x4";
  base.strategy = "cwn:radius=4,horizon=1";
  base.workload = "fib:12";
  core::ExperimentConfig slow = base;
  slow.machine.slow_pe_percent = 50;
  slow.machine.slow_factor = 4;
  const auto rb = core::run_experiment(base);
  const auto rs = core::run_experiment(slow);
  EXPECT_GT(rs.completion_time, rb.completion_time);
}

TEST(SlowPes, RejectsBadPercent) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:2x2";
  cfg.workload = "fib:5";
  cfg.machine.slow_pe_percent = 150;
  EXPECT_THROW(core::run_experiment(cfg), ConfigError);
}

// --------------------------------------------------------------------------
// Distribution-quality metrics
// --------------------------------------------------------------------------

TEST(Imbalance, LocalOnlyIsMaximallyImbalanced) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:3x3";
  cfg.strategy = "local";
  cfg.workload = "fib:10";
  const auto r = core::run_experiment(cfg);
  // One PE did everything.
  EXPECT_NEAR(r.max_min_utilization_gap, 1.0, 1e-9);
  EXPECT_GT(r.utilization_cv, 2.0);
  EXPECT_EQ(r.pe_goals[0], r.goals_executed);
}

TEST(Imbalance, CwnSpreadsGoalsBroadly) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:3x3";
  cfg.strategy = "cwn:radius=4,horizon=1";
  cfg.workload = "fib:13";
  const auto r = core::run_experiment(cfg);
  EXPECT_LT(r.utilization_cv, 0.5);
  std::uint64_t sum = 0;
  for (auto g : r.pe_goals) {
    EXPECT_GT(g, 0u);  // everyone worked
    sum += g;
  }
  EXPECT_EQ(sum, r.goals_executed);
}

TEST(Imbalance, CvOrderingMatchesIntuition) {
  auto cv = [](const char* strat) {
    core::ExperimentConfig cfg;
    cfg.topology = "grid:4x4";
    cfg.strategy = strat;
    cfg.workload = "fib:13";
    return core::run_experiment(cfg).utilization_cv;
  };
  EXPECT_LT(cv("cwn:radius=4,horizon=1"), cv("local"));
  EXPECT_LT(cv("random"), cv("local"));
}

}  // namespace
}  // namespace oracle
