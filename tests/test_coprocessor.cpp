// Tests of the co-processor model: with lb_coprocessor disabled, periodic
// load-balancing work occupies the PE, slowing completion — and GM is hurt
// at least as much as CWN (the paper's §3.1 prediction).

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "lb/strategy.hpp"
#include "machine/machine.hpp"
#include "topo/grid.hpp"
#include "workload/fib.hpp"

namespace oracle {
namespace {

stats::RunResult run(const char* strategy, bool coproc) {
  core::ExperimentConfig cfg;
  cfg.topology = "grid:5x5";
  cfg.strategy = strategy;
  cfg.workload = "fib:13";
  cfg.machine.lb_coprocessor = coproc;
  return core::run_experiment(cfg);
}

TEST(Coprocessor, DefaultIsFreeLbWork) {
  const auto with = run("gm:hwm=1,lwm=1,interval=20", true);
  // With the co-processor, total busy time equals the workload's work.
  const workload::FibWorkload wl(13, core::ExperimentConfig{}.costs);
  EXPECT_EQ(with.total_work, wl.summarize().total_work);
}

TEST(Coprocessor, DisablingSlowsGm) {
  const auto with = run("gm:hwm=1,lwm=1,interval=20", true);
  const auto without = run("gm:hwm=1,lwm=1,interval=20", false);
  EXPECT_GT(without.completion_time, with.completion_time);
  EXPECT_EQ(without.goals_executed, with.goals_executed);
}

TEST(Coprocessor, DisablingSlowsCwn) {
  const auto with = run("cwn:radius=4,horizon=1", true);
  const auto without = run("cwn:radius=4,horizon=1", false);
  EXPECT_GE(without.completion_time, with.completion_time);
}

TEST(Coprocessor, GmPenaltyAtLeastCwnPenalty) {
  // The paper: "the gradient model will suffer more".
  const auto cwn_with = run("cwn:radius=4,horizon=1", true);
  const auto cwn_without = run("cwn:radius=4,horizon=1", false);
  const auto gm_with = run("gm:hwm=1,lwm=1,interval=20", true);
  const auto gm_without = run("gm:hwm=1,lwm=1,interval=20", false);
  const double cwn_penalty =
      static_cast<double>(cwn_without.completion_time) /
      static_cast<double>(cwn_with.completion_time);
  const double gm_penalty = static_cast<double>(gm_without.completion_time) /
                            static_cast<double>(gm_with.completion_time);
  EXPECT_GE(gm_penalty, cwn_penalty * 0.98);  // allow sim noise
}

TEST(Coprocessor, OverheadAccountedAsBusyTime) {
  const auto without = run("gm:hwm=1,lwm=1,interval=20", false);
  const workload::FibWorkload wl(13, core::ExperimentConfig{}.costs);
  // Busy time now exceeds pure work: it includes gradient cycles.
  EXPECT_GT(without.total_work, wl.summarize().total_work);
}

TEST(Coprocessor, FactoryParsesCostOverrides) {
  EXPECT_NO_THROW(lb::make_strategy("gm:ccost=10"));
  EXPECT_NO_THROW(lb::make_strategy("cwn:bcost=5"));
}

}  // namespace
}  // namespace oracle
