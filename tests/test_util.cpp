// Tests for string helpers, the table printer, and the thread pool.

#include <gtest/gtest.h>

#if !defined(_WIN32)
#include <poll.h>
#endif

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/net.hpp"
#include "util/posix_io.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace oracle {
namespace {

// --------------------------------------------------------------------------
// string_util
// --------------------------------------------------------------------------

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a:b:c", ':'),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a::b", ':'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ':'), (std::vector<std::string>{""}));
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x "), "x");
  EXPECT_EQ(trim("\t\n a b \r"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, IEquals) {
  EXPECT_TRUE(iequals("CWN", "cwn"));
  EXPECT_FALSE(iequals("cwn", "gm"));
  EXPECT_FALSE(iequals("ab", "abc"));
}

TEST(StringUtil, ToLower) { EXPECT_EQ(to_lower("GriD:5X5"), "grid:5x5"); }

TEST(StringUtil, ParseIntValid) {
  EXPECT_EQ(parse_int("42", "t"), 42);
  EXPECT_EQ(parse_int(" -7 ", "t"), -7);
}

TEST(StringUtil, ParseIntInvalidThrows) {
  EXPECT_THROW(parse_int("", "t"), ConfigError);
  EXPECT_THROW(parse_int("12x", "t"), ConfigError);
  EXPECT_THROW(parse_int("abc", "t"), ConfigError);
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5", "t"), 2.5);
  EXPECT_THROW(parse_double("2.5.6", "t"), ConfigError);
}

TEST(StringUtil, Strfmt) {
  EXPECT_EQ(strfmt("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(strfmt("%.2f", 1.239), "1.24");
}

TEST(StringUtil, Fixed) { EXPECT_EQ(fixed(3.14159, 3), "3.142"); }

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("dlm:5:10x10", "dlm"));
  EXPECT_FALSE(starts_with("grid", "dlm"));
  EXPECT_FALSE(starts_with("d", "dlm"));
}

TEST(StringUtil, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

// --------------------------------------------------------------------------
// TextTable
// --------------------------------------------------------------------------

TEST(TextTable, AlignsAndPads) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1.5"});
  t.add_row({"longer", "10"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Numeric column right-aligned: "1.5" ends at the same column as "10".
  EXPECT_NE(s.find("   1.5"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, RuleInsertsSeparator) {
  TextTable t({"col"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // Header rule + inserted rule = at least two dashed lines.
  std::size_t dashes = 0, pos = 0;
  while ((pos = s.find("---", pos)) != std::string::npos) {
    ++dashes;
    const std::size_t nl = s.find('\n', pos);
    if (nl == std::string::npos) break;
    pos = nl;
  }
  EXPECT_GE(dashes, 2u);
}

// --------------------------------------------------------------------------
// ThreadPool
// --------------------------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<int> hits(1000, 0);
  ThreadPool::parallel_for(hits.size(), 8,
                           [&](std::size_t i) { hits[i] = 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroItems) {
  ThreadPool::parallel_for(0, 4, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, ParallelForPropagatesException) {
  EXPECT_THROW(ThreadPool::parallel_for(
                   10, 4,
                   [](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, TasksSubmittedFromWorkers) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) pool.submit([&] { ++count; });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

// --------------------------------------------------------------------------
// net: frame encoding + incremental splitting
// --------------------------------------------------------------------------

TEST(FrameSplitter, ReassemblesFramesFromArbitraryChunks) {
  const std::string a = util::frame_bytes("hello");
  const std::string b = util::frame_bytes(std::string(1000, 'x'));
  const std::string c = util::frame_bytes("");  // empty payload is legal
  const std::string wire = a + b + c;

  // Feed byte-by-byte: worst-case fragmentation must still yield the
  // exact payloads in order.
  util::FrameSplitter split;
  std::vector<std::string> got;
  for (const char ch : wire) {
    split.feed(&ch, 1);
    while (auto frame = split.next()) got.push_back(*frame);
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "hello");
  EXPECT_EQ(got[1], std::string(1000, 'x'));
  EXPECT_EQ(got[2], "");
  EXPECT_FALSE(split.corrupt());
  EXPECT_FALSE(split.partial());

  // A partial header/payload reports partial() until completed.
  split.feed(wire.data(), 2);
  EXPECT_TRUE(split.partial());
  EXPECT_FALSE(split.next().has_value());
  split.feed(wire.data() + 2, a.size() - 2);
  const auto frame = split.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "hello");
}

TEST(FrameSplitter, OversizedLengthPrefixLatchesCorrupt) {
  util::FrameSplitter split(16);
  const std::string big = util::frame_bytes(std::string(64, 'y'));
  ASSERT_FALSE(big.empty());  // within the default cap used to build it
  split.feed(big);
  EXPECT_FALSE(split.next().has_value());
  EXPECT_TRUE(split.corrupt());
  // Once corrupt, nothing good comes out ever again.
  split.feed(util::frame_bytes("ok"));
  EXPECT_FALSE(split.next().has_value());
}

TEST(FrameBytes, RefusesPayloadsOverTheCap) {
  EXPECT_TRUE(util::frame_bytes(std::string(17, 'z'), 16).empty());
  const auto wire = util::frame_bytes("abc", 16);
  ASSERT_EQ(wire.size(), 4u + 3u);
  EXPECT_EQ(wire.substr(4), "abc");
}

#if !defined(_WIN32)
TEST(WakePipe, NotifyIsVisibleToPollAndDrainClears) {
  util::WakePipe wake;
  ASSERT_TRUE(wake.valid());
  struct pollfd p = {wake.poll_fd(), POLLIN, 0};
  EXPECT_EQ(util::poll_retry(&p, 1, 0), 0);  // idle: nothing readable
  wake.notify();
  wake.notify();  // coalesces, never blocks
  p.revents = 0;
  ASSERT_EQ(util::poll_retry(&p, 1, 1000), 1);
  EXPECT_TRUE(p.revents & POLLIN);
  wake.drain();
  p.revents = 0;
  EXPECT_EQ(util::poll_retry(&p, 1, 0), 0);  // drained: quiet again
}
#endif

}  // namespace
}  // namespace oracle
