// Ablation: strategy baselines. Anchors the CWN-vs-GM comparison against
// no balancing (local), load-blind pushes (random / round-robin), an
// idealized complete network, and receiver-initiated work stealing.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Ablation — baseline strategies",
               "fib(15): every strategy on grid:10x10 and dlm:5:10x10, plus "
               "an idealized complete:25 network");

  TextTable t({"topology", "strategy", "util %", "speedup", "completion",
               "goal msgs", "ctrl msgs"});
  const std::vector<std::string> topologies = {"grid:10x10", "dlm:5:10x10",
                                               "complete:25"};
  const std::vector<std::string> strategies = {
      "local", "random", "roundrobin", "steal:backoff=10",
      "cwn:radius=9,horizon=2", "gm:hwm=2,lwm=1,interval=20",
      "acwn:radius=9,horizon=2"};

  // One declarative sweep, executed in parallel by the batch engine
  // (row-major: topology varies slowest, matching the table layout).
  const auto results = run_ensemble(core::SweepBuilder(
                                        [] {
                                          auto cfg = core::paper::base_config();
                                          cfg.workload = "fib:15";
                                          return cfg;
                                        }())
                                        .topologies(topologies)
                                        .strategies(strategies)
                                        .build());

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    t.add_row({r.topology, r.strategy, fixed(r.utilization_percent(), 1),
               fixed(r.speedup, 1), std::to_string(r.completion_time),
               std::to_string(r.goal_transmissions),
               std::to_string(r.control_transmissions)});
    if ((i + 1) % strategies.size() == 0) t.add_rule();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected ordering: local << load-blind pushes < {steal, GM} "
              "<= {CWN, ACWN}; the complete network shows what zero network "
              "constraint buys.\n");
  return 0;
}
