// Ablation: communication/computation ratio. The paper's caution (§5):
// "We chose a low communication to computation ratio ... When the ratio is
// higher, CWN may lose some of its edge." This bench scales the per-hop
// channel occupancy from 1 to 64 units (grain stays ~100) and tracks the
// CWN/GM speedup ratio and channel saturation.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Ablation — communication/computation ratio (paper §5 caution)",
               "hop latency swept; fib(15); paper parameters otherwise");

  for (const char* topo : {"grid:10x10", "dlm:5:10x10"}) {
    const Family family =
        std::string(topo).rfind("dlm", 0) == 0 ? Family::Dlm : Family::Grid;
    std::printf("-- %s --\n", topo);
    TextTable t({"hop latency", "CWN util %", "GM util %", "ratio",
                 "CWN max chan util", "GM max chan util"});
    // Control messages stay at 1 unit: the paper's load word is "a very
    // short message"; only data-bearing goal/response traffic scales.
    const std::vector<int> latencies = {1, 2, 4, 8, 16, 32};
    std::vector<ExperimentConfig> configs;
    for (const int latency : latencies) {
      auto [cwn_cfg, gm_cfg] = paired_configs(family, topo, "fib:15");
      cwn_cfg.machine.hop_latency = latency;
      gm_cfg.machine.hop_latency = latency;
      configs.push_back(cwn_cfg);
      configs.push_back(gm_cfg);
    }
    const auto results = run_ensemble(configs);
    for (std::size_t i = 0; i < latencies.size(); ++i) {
      const auto& rc = results[2 * i];
      const auto& rg = results[2 * i + 1];
      t.add_row({std::to_string(latencies[i]),
                 fixed(rc.utilization_percent(), 1),
                 fixed(rg.utilization_percent(), 1),
                 fixed(speedup_ratio(rc, rg), 2),
                 fixed(rc.max_channel_utilization * 100, 1),
                 fixed(rg.max_channel_utilization * 100, 1)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("expected: CWN's margin shrinks as hops get expensive (it "
              "sends ~3x the messages over ~3x the distance), confirming "
              "the paper's caution.\n");
  return 0;
}
