// Plots 11-13 of the paper: PE utilization versus time on the 100-PE
// double lattice mesh (DLM span 5, 10x10) for Fibonacci of 18, 15 and 9.
// The paper's reading: CWN has a much faster rise-time but cannot hold
// 100%; GM rises slowly but holds the plateau; plot 11 shows CWN's
// "extended tail".

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Plots 11-13 — utilization vs time, DLM(5, 10x10), Fibonacci",
               "sampled every 50 units; bars show % of PE capacity busy");

  int plot_no = 11;
  for (const char* wl : {"fib:18", "fib:15", "fib:9"}) {
    auto [cwn_cfg, gm_cfg] = paired_configs(Family::Dlm, "dlm:5:10x10", wl);
    cwn_cfg.machine.sample_interval = 50;
    gm_cfg.machine.sample_interval = 50;
    const auto results = run_ensemble({cwn_cfg, gm_cfg});

    std::printf("-- Plot %d: query %s --\n", plot_no++, wl);
    print_time_profile(results[0]);
    print_time_profile(results[1]);
  }
  std::printf("expected shape: CWN rises to its peak much earlier than GM "
              "(fast spread), GM holds its plateau longer once reached.\n");
  return 0;
}
