// Table 1 of the paper: the optimization experiments that selected each
// scheme's parameters. "We chose a few sample points in the space of
// planned experiments, and ran the simulations for various combination of
// parameters. The winning combinations were used for the comparison
// experiments."
//
// Sample points used here: fib(13) and dc(1,377) on the 100-PE grid and the
// 100-PE DLM (mid-table cells). The score is mean speedup over the points.
// Each parameter sweep runs as one batch on the experiment engine.

#include <algorithm>

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

namespace {

constexpr const char* kSamplePoints[] = {"fib:13", "dc:1:377"};
constexpr std::size_t kPointsPerCell = std::size(kSamplePoints);

/// Append one config per sample point for this strategy spec.
void push_cell_configs(std::vector<ExperimentConfig>& configs,
                       const std::string& strategy, Family family) {
  const auto& size = core::paper::size_points()[2];  // 100 PEs
  const std::string topo =
      family == Family::Grid ? size.grid_spec : size.dlm_spec;
  for (const char* wl : kSamplePoints) {
    ExperimentConfig cfg = core::paper::base_config();
    cfg.topology = topo;
    cfg.strategy = strategy;
    cfg.workload = wl;
    configs.push_back(cfg);
  }
}

/// Mean speedup of one cell's sample-point results.
double cell_score(const std::vector<stats::RunResult>& results,
                  std::size_t cell) {
  double sum = 0;
  for (std::size_t p = 0; p < kPointsPerCell; ++p)
    sum += results[cell * kPointsPerCell + p].speedup;
  return sum / static_cast<double>(kPointsPerCell);
}

void sweep_cwn(Family family, const char* label) {
  std::printf("-- CWN parameter sweep on the %s --\n", label);
  std::vector<std::pair<int, int>> cells;
  std::vector<ExperimentConfig> configs;
  for (const int radius : {2, 3, 5, 7, 9, 12}) {
    for (const int horizon : {0, 1, 2, 3}) {
      if (horizon > radius) continue;
      cells.emplace_back(radius, horizon);
      push_cell_configs(
          configs, strfmt("cwn:radius=%d,horizon=%d", radius, horizon),
          family);
    }
  }
  const auto results = run_ensemble(configs);

  TextTable t({"radius", "horizon", "mean speedup"});
  double best = -1;
  std::string best_params;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double s = cell_score(results, i);
    t.add_row({std::to_string(cells[i].first),
               std::to_string(cells[i].second), fixed(s, 1)});
    if (s > best) {
      best = s;
      best_params = strfmt("radius=%d, horizon=%d", cells[i].first,
                           cells[i].second);
    }
  }
  std::printf("%s\nwinner: %s (paper Table 1: %s)\n\n",
              t.to_string().c_str(), best_params.c_str(),
              family == Family::Grid ? "radius=9, horizon=2"
                                     : "radius=5, horizon=1");
}

void sweep_gm(Family family, const char* label) {
  std::printf("-- Gradient Model parameter sweep on the %s --\n", label);
  struct GmCell {
    int hwm, lwm, interval;
  };
  std::vector<GmCell> cells;
  std::vector<ExperimentConfig> configs;
  for (const int hwm : {1, 2, 4}) {
    for (const int lwm : {1, 2}) {
      if (lwm > hwm) continue;
      for (const int interval : {10, 20, 40, 80}) {
        cells.push_back({hwm, lwm, interval});
        push_cell_configs(
            configs,
            strfmt("gm:hwm=%d,lwm=%d,interval=%d", hwm, lwm, interval),
            family);
      }
    }
  }
  const auto results = run_ensemble(configs);

  TextTable t({"hwm", "lwm", "interval", "mean speedup"});
  double best = -1;
  std::string best_params;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double s = cell_score(results, i);
    t.add_row({std::to_string(cells[i].hwm), std::to_string(cells[i].lwm),
               std::to_string(cells[i].interval), fixed(s, 1)});
    if (s > best) {
      best = s;
      best_params = strfmt("hwm=%d, lwm=%d, interval=%d", cells[i].hwm,
                           cells[i].lwm, cells[i].interval);
    }
  }
  std::printf("%s\nwinner: %s (paper Table 1: %s)\n\n",
              t.to_string().c_str(), best_params.c_str(),
              family == Family::Grid ? "hwm=2, lwm=1, interval=20"
                                     : "hwm=1, lwm=1, interval=20");
}

}  // namespace

int main() {
  print_header("Table 1 — Parameter optimization experiments",
               "sample points: fib(13) and dc(1,377) on 100-PE networks; "
               "score = mean speedup; each sweep is one engine batch");
  sweep_cwn(Family::Grid, "10x10 grid");
  sweep_cwn(Family::Dlm, "DLM(5, 10x10)");
  sweep_gm(Family::Grid, "10x10 grid");
  sweep_gm(Family::Dlm, "DLM(5, 10x10)");
  return 0;
}
