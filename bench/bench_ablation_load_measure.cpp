// Ablation: the load measure. Section 4 attributes CWN's "extended tail"
// (plot 11) to counting only queued messages as load: "This ignores
// potential future commitments, indicated by the count of the tasks that
// are waiting for messages." This bench compares QueueLength against
// QueuePlusWaiting for both schemes.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Ablation — load measure (paper §4/§5 suggestion)",
               "QueueLength (paper default) vs QueuePlusWaiting "
               "(+ tasks awaiting responses)");

  // One engine batch over the (topology x scheme x load measure) plane.
  std::vector<ExperimentConfig> configs;
  for (const char* topo : {"grid:10x10", "dlm:5:10x10"}) {
    const Family family =
        std::string(topo).rfind("dlm", 0) == 0 ? Family::Dlm : Family::Grid;
    for (const bool cwn : {true, false}) {
      for (const bool waiting : {false, true}) {
        ExperimentConfig cfg = core::paper::base_config();
        cfg.topology = topo;
        cfg.strategy = cwn ? core::paper::cwn_spec(family)
                           : core::paper::gm_spec(family);
        cfg.workload = "fib:15";
        cfg.machine.load_measure = waiting
                                       ? machine::LoadMeasure::QueuePlusWaiting
                                       : machine::LoadMeasure::QueueLength;
        configs.push_back(cfg);
      }
    }
  }
  const auto results = run_ensemble(configs);

  TextTable t({"topology", "strategy", "load measure", "util %", "speedup",
               "completion"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const bool cwn = configs[i].strategy.rfind("cwn", 0) == 0;
    const bool waiting =
        configs[i].machine.load_measure == machine::LoadMeasure::QueuePlusWaiting;
    t.add_row({configs[i].topology, cwn ? "CWN" : "GM",
               waiting ? "queue+waiting" : "queue only",
               fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
               std::to_string(r.completion_time)});
    if ((i + 1) % 4 == 0) t.add_rule();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected: counting future commitments shifts work away from "
              "PEs with many parked parents, trimming the tail the paper "
              "saw in plot 11.\n");
  return 0;
}
