// Ablation: CWN's radius and horizon (Section 2.1's design knobs).
// The radius bounds how far a goal may travel from its parent (locality
// of parent-child communication); the horizon forces goals to "look over
// the horizon" before a load-based keep. This bench maps speedup and
// communication cost across the (radius, horizon) plane on both families.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

namespace {

void sweep(Family family, const std::string& topo, const char* wl) {
  std::printf("-- %s, %s --\n", topo.c_str(), wl);
  // Build the whole (radius, horizon) plane up front and run it as one
  // ensemble on the batch engine (sharded workers, shared topology build).
  std::vector<std::pair<int, int>> points;
  std::vector<ExperimentConfig> configs;
  for (const int radius : {1, 2, 3, 5, 7, 9, 12, 18}) {
    for (const int horizon : {0, 1, 2, 4}) {
      if (horizon > radius) continue;
      ExperimentConfig cfg = core::paper::base_config();
      cfg.topology = topo;
      cfg.strategy = strfmt("cwn:radius=%d,horizon=%d", radius, horizon);
      cfg.workload = wl;
      points.emplace_back(radius, horizon);
      configs.push_back(std::move(cfg));
    }
  }
  const auto results = run_ensemble(configs);

  TextTable t({"radius", "horizon", "util %", "speedup", "avg goal dist",
               "goal msgs"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    t.add_row({std::to_string(points[i].first),
               std::to_string(points[i].second),
               fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
               fixed(r.avg_goal_distance, 2),
               std::to_string(r.goal_transmissions)});
  }
  std::printf("%s\n", t.to_string().c_str());
  (void)family;
}

}  // namespace

int main() {
  print_header("Ablation — CWN radius & horizon",
               "expected: tiny radii bottleneck near the source; huge radii "
               "pay communication for little gain; the paper's Table 1 "
               "choices sit near the knee");
  sweep(Family::Grid, "grid:10x10", "fib:15");
  sweep(Family::Dlm, "dlm:5:10x10", "fib:15");
  return 0;
}
