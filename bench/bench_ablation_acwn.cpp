// Ablation: ACWN — the paper's §5 future-work features (saturation control
// and bounded redistribution) layered on CWN. The paper predicts both
// should help: saturation control cuts useless communication at full load,
// and redistribution fixes the stuck-goal problem plots 11-12 expose.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Ablation — ACWN (paper §5 future work) vs CWN vs GM",
               "saturation control + bounded redistribution on CWN");

  // Build the whole plane up front and run it as one engine batch.
  std::vector<ExperimentConfig> configs;
  std::size_t cells = 0;
  for (const char* topo : {"grid:10x10", "dlm:5:10x10"}) {
    const Family family =
        std::string(topo).rfind("dlm", 0) == 0 ? Family::Dlm : Family::Grid;
    for (const char* wl : {"fib:15", "fib:18", "burst:phases=4,width=7"}) {
      const std::string cwn = core::paper::cwn_spec(family);
      // ACWN inherits the tuned CWN radius/horizon for the family.
      const std::string acwn_base =
          family == Family::Grid ? "acwn:radius=9,horizon=2"
                                 : "acwn:radius=5,horizon=1";
      const std::vector<std::string> strategies = {
          cwn,
          acwn_base + ",saturation=3,redistribute=0",   // saturation only
          acwn_base + ",saturation=0,redistribute=4",   // redistribution only
          acwn_base + ",saturation=3,redistribute=4",   // both
          core::paper::gm_spec(family),
      };
      ++cells;
      for (const auto& strat : strategies) {
        ExperimentConfig cfg = core::paper::base_config();
        cfg.topology = topo;
        cfg.strategy = strat;
        cfg.workload = wl;
        configs.push_back(cfg);
      }
    }
  }
  const auto results = run_ensemble(configs);
  // Rule placement tracks the generated list, not a hand-maintained count.
  const std::size_t strategies_per_cell = configs.size() / cells;

  TextTable t({"topology", "workload", "strategy", "util %", "speedup",
               "goal msgs", "avg dist"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    t.add_row({configs[i].topology, configs[i].workload, r.strategy,
               fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
               std::to_string(r.goal_transmissions),
               fixed(r.avg_goal_distance, 2)});
    if ((i + 1) % strategies_per_cell == 0) t.add_rule();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected: saturation control preserves speedup with fewer "
              "messages; redistribution helps most on the bursty workload "
              "where load conditions change after placement.\n");
  return 0;
}
