// Microbenchmarks for the columnar metrics pipeline: live
// stats::MetricsRecorder sampling versus the frozen pre-refactor path
// (bench/legacy_metrics.hpp, one heap-allocated vector per frame). Run by
// the CI perf-smoke job; the JSON output is uploaded as BENCH_stats.json.
//
// Every benchmark also reports an `allocs_per_frame` counter measured with
// a global operator-new hook: the recorder's steady state must report 0.00
// while the legacy path reports >= 1 — the allocation the refactor exists
// to eliminate.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "legacy_metrics.hpp"
#include "stats/metrics_recorder.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// The replacement operators pair malloc with free; GCC cannot see through
// the replacement and warns at call sites.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using oracle::Rng;
using oracle::sim::SimTime;

constexpr std::size_t kFrames = 512;

/// Live columnar path: one preallocated recorder reused across runs (one
/// Machine reserves once and samples for the whole run; clear() models the
/// run boundary and keeps the capacity). Reusing the recorder also keeps
/// the timed region free of first-touch page faults, which would otherwise
/// dominate and measure the kernel, not the sampling path.
void BM_RecorderSampling(benchmark::State& state) {
  const auto num_pes = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t sampled_allocs = 0;
  std::uint64_t sampled_frames = 0;

  oracle::stats::MetricsRecorder rec;
  rec.reserve(num_pes, kFrames);
  const auto series = rec.add_series("utilization_percent", kFrames);

  for (auto _ : state) {
    state.PauseTiming();
    rec.clear();
    Rng rng(1);
    const std::uint64_t before = g_allocations.load();
    state.ResumeTiming();

    for (std::size_t f = 0; f < kFrames; ++f) {
      const SimTime t = static_cast<SimTime>(50 * (f + 1));
      const auto ref = rec.begin_frame(t);
      double sum = 0.0;
      for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
        const double u =
            static_cast<double>(rng.below(10'000)) / 9'999.0;
        ref.utilization[pe] = u;
        ref.queue_depth[pe] = static_cast<std::int64_t>(pe & 3);
        sum += u;
      }
      rec.append(series, t, sum / num_pes * 100.0);
    }

    benchmark::DoNotOptimize(rec.frames());
    sampled_allocs += g_allocations.load() - before;
    sampled_frames += kFrames;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kFrames));
  state.counters["allocs_per_frame"] =
      static_cast<double>(sampled_allocs) /
      static_cast<double>(sampled_frames);
}

/// Frozen pre-refactor path: a fresh std::vector per frame plus the
/// growing owned containers.
void BM_LegacySampling(benchmark::State& state) {
  const auto num_pes = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t sampled_allocs = 0;
  std::uint64_t sampled_frames = 0;

  for (auto _ : state) {
    state.PauseTiming();
    oracle::bench::legacy::LoadMonitor monitor(num_pes);
    oracle::bench::legacy::TimeSeries series("utilization_percent");
    Rng rng(1);
    const std::uint64_t before = g_allocations.load();
    state.ResumeTiming();

    for (std::size_t f = 0; f < kFrames; ++f) {
      const SimTime t = static_cast<SimTime>(50 * (f + 1));
      std::vector<double> frame(num_pes);
      double sum = 0.0;
      for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
        const double u =
            static_cast<double>(rng.below(10'000)) / 9'999.0;
        frame[pe] = u;
        sum += u;
      }
      monitor.add_frame(t, std::move(frame));
      series.add(t, sum / num_pes * 100.0);
    }

    benchmark::DoNotOptimize(monitor.frames());
    sampled_allocs += g_allocations.load() - before;
    sampled_frames += kFrames;
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kFrames));
  state.counters["allocs_per_frame"] =
      static_cast<double>(sampled_allocs) /
      static_cast<double>(sampled_frames);
}

BENCHMARK(BM_RecorderSampling)->Arg(25)->Arg(100)->Arg(400);
BENCHMARK(BM_LegacySampling)->Arg(25)->Arg(100)->Arg(400);

}  // namespace

BENCHMARK_MAIN();
