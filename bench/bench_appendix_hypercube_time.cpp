// Appendix I, plots A-6..A-8: utilization vs time for Fibonacci on the
// dimension-7 hypercube (128 PEs), for fib 18, 15 and a small size.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Appendix A-6..A-8 — utilization vs time, hypercube dim 7",
               "sampled every 50 units; bars show % of PE capacity busy");

  for (const char* wl : {"fib:18", "fib:15", "fib:9"}) {
    ExperimentConfig cwn = core::paper::base_config();
    cwn.topology = "hypercube:7";
    cwn.strategy = "cwn:radius=7,horizon=2";
    cwn.workload = wl;
    cwn.machine.sample_interval = 50;
    ExperimentConfig gm = cwn;
    gm.strategy = core::paper::gm_spec(Family::Grid);
    const auto results = run_ensemble({cwn, gm});

    std::printf("-- query %s --\n", wl);
    print_time_profile(results[0]);
    print_time_profile(results[1]);
  }
  return 0;
}
