// Ablation: the Gradient Model's knobs. The paper (§3.1) notes that the
// 20-unit interval is "fairly low ... which should be an asset to its
// performance" and that GM assumes a communication co-processor. This bench
// sweeps the interval and water-marks, and toggles the two semantic
// choices our implementation exposes: require_gradient (send only when an
// idle PE is actually inferred) and send_newest.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Ablation — Gradient Model parameters",
               "grid:10x10 and dlm:5:10x10, fib(15)");

  for (const char* topo : {"grid:10x10", "dlm:5:10x10"}) {
    std::printf("-- interval sweep on %s (hwm=2, lwm=1) --\n", topo);
    TextTable t({"interval", "util %", "speedup", "goal msgs", "ctrl msgs"});
    for (const int interval : {5, 10, 20, 40, 80, 160, 320}) {
      ExperimentConfig cfg = core::paper::base_config();
      cfg.topology = topo;
      cfg.strategy = strfmt("gm:hwm=2,lwm=1,interval=%d", interval);
      cfg.workload = "fib:15";
      const auto r = core::run_experiment(cfg);
      t.add_row({std::to_string(interval), fixed(r.utilization_percent(), 1),
                 fixed(r.speedup, 1), std::to_string(r.goal_transmissions),
                 std::to_string(r.control_transmissions)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  std::printf("-- water-mark sweep on grid:10x10 (interval=20) --\n");
  TextTable wm({"hwm", "lwm", "util %", "speedup", "goal msgs"});
  for (const int hwm : {1, 2, 3, 5, 8}) {
    for (const int lwm : {1, 2}) {
      if (lwm > hwm) continue;
      ExperimentConfig cfg = core::paper::base_config();
      cfg.topology = "grid:10x10";
      cfg.strategy = strfmt("gm:hwm=%d,lwm=%d,interval=20", hwm, lwm);
      cfg.workload = "fib:15";
      const auto r = core::run_experiment(cfg);
      wm.add_row({std::to_string(hwm), std::to_string(lwm),
                  fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
                  std::to_string(r.goal_transmissions)});
    }
  }
  std::printf("%s\n", wm.to_string().c_str());

  std::printf("-- semantic toggles on grid:10x10 (hwm=2, lwm=1, i=20) --\n");
  TextTable tg({"require_gradient", "send_newest", "util %", "goal msgs"});
  for (const bool rg : {true, false}) {
    for (const bool sn : {true, false}) {
      ExperimentConfig cfg = core::paper::base_config();
      cfg.topology = "grid:10x10";
      cfg.strategy = strfmt("gm:requiregradient=%d,sendnewest=%d", rg ? 1 : 0,
                            sn ? 1 : 0);
      cfg.workload = "fib:15";
      const auto r = core::run_experiment(cfg);
      tg.add_row({rg ? "yes" : "no", sn ? "yes" : "no",
                  fixed(r.utilization_percent(), 1),
                  std::to_string(r.goal_transmissions)});
    }
  }
  std::printf("%s\n", tg.to_string().c_str());
  std::printf("expected: shorter intervals help GM (the paper gave it 20); "
              "hoarding grows with hwm; blind sends waste messages.\n");
  return 0;
}
