// Ablation: the Gradient Model's knobs. The paper (§3.1) notes that the
// 20-unit interval is "fairly low ... which should be an asset to its
// performance" and that GM assumes a communication co-processor. This bench
// sweeps the interval and water-marks, and toggles the two semantic
// choices our implementation exposes: require_gradient (send only when an
// idle PE is actually inferred) and send_newest.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Ablation — Gradient Model parameters",
               "grid:10x10 and dlm:5:10x10, fib(15)");

  // Each sweep runs as one batch on the experiment engine.
  const auto gm_config = [](const char* topo, const std::string& strategy) {
    ExperimentConfig cfg = core::paper::base_config();
    cfg.topology = topo;
    cfg.strategy = strategy;
    cfg.workload = "fib:15";
    return cfg;
  };

  const std::vector<int> intervals = {5, 10, 20, 40, 80, 160, 320};
  for (const char* topo : {"grid:10x10", "dlm:5:10x10"}) {
    std::printf("-- interval sweep on %s (hwm=2, lwm=1) --\n", topo);
    std::vector<ExperimentConfig> configs;
    for (const int interval : intervals)
      configs.push_back(
          gm_config(topo, strfmt("gm:hwm=2,lwm=1,interval=%d", interval)));
    const auto results = run_ensemble(configs);

    TextTable t({"interval", "util %", "speedup", "goal msgs", "ctrl msgs"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      t.add_row({std::to_string(intervals[i]),
                 fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
                 std::to_string(r.goal_transmissions),
                 std::to_string(r.control_transmissions)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  std::printf("-- water-mark sweep on grid:10x10 (interval=20) --\n");
  std::vector<std::pair<int, int>> marks;
  std::vector<ExperimentConfig> wm_configs;
  for (const int hwm : {1, 2, 3, 5, 8}) {
    for (const int lwm : {1, 2}) {
      if (lwm > hwm) continue;
      marks.emplace_back(hwm, lwm);
      wm_configs.push_back(gm_config(
          "grid:10x10", strfmt("gm:hwm=%d,lwm=%d,interval=20", hwm, lwm)));
    }
  }
  const auto wm_results = run_ensemble(wm_configs);
  TextTable wm({"hwm", "lwm", "util %", "speedup", "goal msgs"});
  for (std::size_t i = 0; i < wm_results.size(); ++i) {
    const auto& r = wm_results[i];
    wm.add_row({std::to_string(marks[i].first),
                std::to_string(marks[i].second),
                fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
                std::to_string(r.goal_transmissions)});
  }
  std::printf("%s\n", wm.to_string().c_str());

  std::printf("-- semantic toggles on grid:10x10 (hwm=2, lwm=1, i=20) --\n");
  std::vector<std::pair<bool, bool>> toggles;
  std::vector<ExperimentConfig> tg_configs;
  for (const bool rg : {true, false}) {
    for (const bool sn : {true, false}) {
      toggles.emplace_back(rg, sn);
      tg_configs.push_back(
          gm_config("grid:10x10", strfmt("gm:requiregradient=%d,sendnewest=%d",
                                         rg ? 1 : 0, sn ? 1 : 0)));
    }
  }
  const auto tg_results = run_ensemble(tg_configs);
  TextTable tg({"require_gradient", "send_newest", "util %", "goal msgs"});
  for (std::size_t i = 0; i < tg_results.size(); ++i) {
    const auto& r = tg_results[i];
    tg.add_row({toggles[i].first ? "yes" : "no",
                toggles[i].second ? "yes" : "no",
                fixed(r.utilization_percent(), 1),
                std::to_string(r.goal_transmissions)});
  }
  std::printf("%s\n", tg.to_string().c_str());
  std::printf("expected: shorter intervals help GM (the paper gave it 20); "
              "hoarding grows with hwm; blind sends waste messages.\n");
  return 0;
}
