// bench_steal_sweep — wall-clock comparison of the two multi-process
// distribution modes on a heavy-tailed sweep: static content-hash shards
// (`--workers N`) vs the work-stealing lease supervisor (`--steal`).
//
// The sweep is the pathology Kale's ICPP'88 adaptive strategies target,
// reproduced at the experiment-runner level: a pile of cheap grid points
// plus a few expensive ones ("whales"). The whale seeds are chosen —
// deterministically, from the content hashes — so that every whale lands
// in the *same* static shard: the static run serializes all of them on one
// worker while the other three idle, whereas the steal supervisor re-leases
// the whale tail across the idle workers as they drain.
//
// The binary is its own worker (self-exec): the parent re-executes itself
// with `--steal-bench-worker`, and the worker handles both the static
// `--shard i/N` and the steal `--worker-slot k/W` protocols over the same
// hard-coded sweep.
//
// Output: one JSON object (CI saves it as BENCH_steal.json and asserts
// speedup > 1).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "oracle.hpp"

namespace {

using namespace oracle;

constexpr std::size_t kWorkers = 4;
constexpr const char* kLight = "fib:12";
constexpr const char* kHeavy = "fib:24";

core::ExperimentConfig bench_config() {
  core::ExperimentConfig cfg = core::paper::base_config();
  cfg.topology = "grid:6x6";
  cfg.workload = kLight;
  return cfg;
}

/// 28 light jobs followed by 4 whales whose seeds are picked so all whales
/// share one static shard (hash % kWorkers collide). Pure function of the
/// content hashes, so the pathology reproduces on any host.
std::vector<core::ExperimentConfig> bench_sweep() {
  auto configs = core::SweepBuilder(bench_config())
                     .strategies({"cwn", "gm", "random", "roundrobin"})
                     .seeds({1, 2, 3, 4, 5, 6, 7})
                     .build();

  core::ExperimentConfig heavy = bench_config();
  heavy.workload = kHeavy;
  heavy.strategy = "cwn";
  heavy.machine.seed = 1;
  const std::size_t target =
      exp::shard_of_hash(exp::job_content_hash(heavy), kWorkers);
  std::size_t found = 0;
  for (std::uint64_t seed = 1; found < 4 && seed < 10'000; ++seed) {
    heavy.machine.seed = seed;
    if (exp::shard_of_hash(exp::job_content_hash(heavy), kWorkers) != target)
      continue;
    configs.push_back(heavy);
    ++found;
  }
  return configs;
}

int worker_main(int argc, char** argv) {
  std::string out;
  std::optional<exp::ShardSpec> shard, slot;
  bool resume = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&] { return std::string(i + 1 < argc ? argv[++i] : ""); };
    if (arg == "--out") {
      out = value();
    } else if (arg == "--shard") {
      shard = exp::ShardSpec::parse(value());
    } else if (arg == "--worker-slot") {
      slot = exp::ShardSpec::parse(value());
    } else if (arg == "--resume") {
      resume = true;
    }
  }
  if (out.empty() || (!shard && !slot)) return 2;

  const auto configs = bench_sweep();
  if (slot) {
    exp::LeaseWorkerOptions wopt;
    wopt.canonical_out = out;
    wopt.slot = slot->index;
    wopt.slot_count = slot->count;
    wopt.merge_resume = resume;
    return exp::run_lease_worker(configs, wopt).ok() ? 0 : 1;
  }
  exp::BatchOptions opt;
  opt.jsonl_path = exp::shard_store_path(out, shard->index, shard->count);
  opt.shard_index = shard->index;
  opt.shard_count = shard->count;
  opt.resume = resume;
  if (resume) opt.extra_resume_stores.push_back(out);
  opt.collect = false;
  opt.exec.progress = false;
  // One thread per worker process, matching the steal workers: each worker
  // models one PE, so the comparison isolates the *distribution* policy
  // (the in-process thread executor would otherwise re-balance a static
  // shard internally and mask the imbalance this bench measures).
  opt.exec.workers = 1;
  return exp::run_batch(configs, opt).report.ok() ? 0 : 1;
}

struct TimedRun {
  double seconds = 0.0;
  std::size_t steals = 0;
};

TimedRun timed_run(const std::vector<core::ExperimentConfig>& configs,
                   const std::string& self, const std::string& out,
                   bool steal) {
  exp::ShardRunOptions sopt;
  sopt.workers = kWorkers;
  sopt.out = out;
  sopt.steal = steal;
  sopt.exec_path = exp::self_exec_path(self);
  sopt.worker_args = {"--steal-bench-worker", "--out", out};

  const auto start = std::chrono::steady_clock::now();
  const auto report = exp::run_sharded_processes(configs, sopt);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!report.ok()) {
    std::fprintf(stderr, "bench_steal_sweep: %s run failed: %s\n",
                 steal ? "steal" : "static", report.summary().c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "[%s] %.3fs  %s\n", steal ? "steal " : "static",
               seconds, report.summary().c_str());
  return {seconds, report.steals};
}

std::string store_digest(const std::string& path) {
  // Cheap content fingerprint for the cross-mode identity check.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return "missing";
  std::uint64_t h = 1469598103934665603ull;
  int c;
  std::size_t bytes = 0;
  while ((c = std::fgetc(f)) != EOF) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    ++bytes;
  }
  std::fclose(f);
  return strfmt("%zu:%016llx", bytes, static_cast<unsigned long long>(h));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--steal-bench-worker") == 0)
    return worker_main(argc, argv);

  const auto configs = bench_sweep();
  std::size_t heavies = 0;
  for (const auto& cfg : configs)
    if (cfg.workload == kHeavy) ++heavies;
  std::fprintf(stderr,
               "bench_steal_sweep: %zu jobs (%zu whales colliding on one "
               "static shard), %zu workers\n",
               configs.size(), heavies, kWorkers);

  const std::string static_out = "bench_steal_static.jsonl";
  const std::string steal_out = "bench_steal_dynamic.jsonl";
  const auto static_run = timed_run(configs, argv[0], static_out, false);
  const auto steal_run = timed_run(configs, argv[0], steal_out, true);

  const std::string static_digest = store_digest(static_out);
  const std::string steal_digest = store_digest(steal_out);

  // `cpus` lets CI gate the wall-clock assertion: on a single-core host
  // every schedule serializes and no distribution policy can win.
  std::printf(
      "{\n"
      "  \"name\": \"steal_vs_static_heavy_tail\",\n"
      "  \"jobs\": %zu,\n"
      "  \"whales\": %zu,\n"
      "  \"workers\": %zu,\n"
      "  \"cpus\": %u,\n"
      "  \"static_seconds\": %.4f,\n"
      "  \"steal_seconds\": %.4f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"steals\": %zu,\n"
      "  \"stores_identical\": %s\n"
      "}\n",
      configs.size(), heavies, kWorkers, std::thread::hardware_concurrency(),
      static_run.seconds, steal_run.seconds,
      static_run.seconds / steal_run.seconds, steal_run.steals,
      static_digest == steal_digest ? "true" : "false");
  return static_digest == steal_digest ? 0 : 1;
}
