// Table 2 of the paper: "Speedup of CWN over GM" — the full 240-run
// comparison (2 programs x 6 sizes x 2 topology families x 5 sizes x 2
// strategies), printed as the paper's 12-row x 10-column ratio table.
//
// Expected shape (paper): CWN wins in 118/120 cells; >10% in 110; up to
// ~3x on the large grids; DLM margins much smaller (1.0-1.5x).

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Table 2 — Speedup of CWN over GM",
               "ratio = (PEs x avg util)_CWN / (PEs x avg util)_GM, "
               "paper parameters from Table 1");

  const auto& sizes = core::paper::size_points();
  struct Row {
    std::string label;
    std::string workload;
  };
  std::vector<Row> rows;
  const std::vector<std::uint32_t> fib_args = {7, 9, 11, 13, 15, 18};
  for (std::size_t i = 0; i < core::paper::fib_specs().size(); ++i)
    rows.push_back({strfmt("fib(%u)", fib_args[i]), core::paper::fib_specs()[i]});
  const std::vector<int> dc_ns = {21, 55, 144, 377, 987, 4181};
  for (std::size_t i = 0; i < core::paper::dc_specs().size(); ++i)
    rows.push_back({strfmt("dc(1,%d)", dc_ns[i]), core::paper::dc_specs()[i]});

  // Assemble all 240 configs: for each row, grids then DLMs, CWN then GM.
  std::vector<ExperimentConfig> configs;
  for (const Row& row : rows) {
    for (const Family family : {Family::Grid, Family::Dlm}) {
      for (const auto& size : sizes) {
        const std::string topo =
            family == Family::Grid ? size.grid_spec : size.dlm_spec;
        auto [cwn, gm] = paired_configs(family, topo, row.workload);
        configs.push_back(cwn);
        configs.push_back(gm);
      }
    }
  }
  // The full 240-run grid goes through the batch engine: sharded across
  // all cores with live ETA, and dumpable to JSONL via ORACLE_BENCH_JSONL.
  const auto results = run_ensemble(configs);

  std::vector<std::string> header = {"workload"};
  for (const auto& s : sizes) header.push_back(strfmt("grid %u", s.pes));
  for (const auto& s : sizes) header.push_back(strfmt("dlm %u", s.pes));
  TextTable table(header);

  std::size_t idx = 0;
  int cwn_wins = 0, significant = 0, cells = 0;
  double max_ratio = 0;
  for (const Row& row : rows) {
    std::vector<std::string> cells_out = {row.label};
    for (int cell = 0; cell < 10; ++cell) {
      const auto& cwn = results[idx++];
      const auto& gm = results[idx++];
      const double ratio = speedup_ratio(cwn, gm);
      cells_out.push_back(fixed(ratio, 2));
      ++cells;
      if (ratio > 1.0) ++cwn_wins;
      if (ratio > 1.10) ++significant;
      if (ratio > max_ratio) max_ratio = ratio;
    }
    if (row.label == "dc(1,21)") table.add_rule();
    table.add_row(cells_out);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("CWN wins in %d / %d cells (paper: 118/120); "
              ">10%% better in %d (paper: 110); max ratio %.2f "
              "(paper: ~3.1 on large grids)\n",
              cwn_wins, cells, significant, max_ratio);
  return 0;
}
