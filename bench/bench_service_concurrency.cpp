// bench_service_concurrency — warm-query throughput of the resident
// oracle daemon: 8 concurrent clients hammering the same pre-warmed
// store, served by a 1-worker pool (the serial baseline — queries queue
// behind each other) vs an auto-sized pool (concurrent slices). A warm
// query is pure serving-path work — index lookups, aggregation, table
// rendering, framing — so the ratio isolates what PR 10's concurrency
// actually buys on the serving path.
//
// The store is fabricated (one synthetic JSONL record per grid point, no
// simulations): the bench measures the daemon, not the engine.
//
// Output: one JSON object (CI saves it as BENCH_service.json and asserts
// speedup >= 2 on runners with >= 4 cores). `tables_identical` asserts
// the concurrency contract — every response byte-identical to a direct
// aggregation — so a throughput win can never come from a wrong answer.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "oracle.hpp"

namespace {

using namespace oracle;

constexpr std::size_t kClients = 8;
constexpr std::size_t kQueriesPerClient = 24;

/// 38 topologies x 4 seeds = 152 records: a big enough table that one
/// warm query does real aggregation work.
core::SweepSpec bench_sweep() {
  core::SweepSpec spec;
  spec.topologies = {"grid:4x4"};
  spec.strategies = {"random"};
  for (int i = 2; i <= 39; ++i)
    spec.workloads.push_back("fib:" + std::to_string(i));
  spec.seeds = {1, 2, 3, 4};
  return spec;
}

stats::RunResult fabricated(const exp::ExperimentJob& job) {
  stats::RunResult r;
  r.topology = job.config.topology;
  r.strategy = job.config.strategy;
  r.workload = job.config.workload;
  r.num_pes = 16;
  r.seed = job.config.machine.seed;
  r.completion_time = 1000 + static_cast<std::int64_t>(job.index);
  r.goals_executed = 10;
  r.total_work = 500;
  r.critical_path = 100;
  r.avg_utilization = 0.5;
  r.speedup = 2.0 + 0.01 * static_cast<double>(job.index % 7);
  r.events_executed = 42;
  return r;
}

void fabricate_store(const core::SweepSpec& spec, const std::string& store) {
  std::remove(store.c_str());
  exp::JobQueue queue(spec.build());
  std::ofstream out(store, std::ios::binary);
  for (const auto& job : queue.jobs())
    out << exp::jsonl_record(job, fabricated(job)) << '\n';
}

util::NetDeadline in_30s() {
  return util::NetClock::now() + std::chrono::seconds(30);
}

/// One warm query over the wire; returns the table bytes ("" on failure).
std::string wire_query(int fd, const core::SweepSpec& spec,
                       std::uint64_t seq) {
  exp::ServiceRequest req;
  req.seq = seq;
  req.op = exp::ServiceOp::kQuery;
  req.query.sweep = spec;
  if (!util::send_frame(fd, req.encode(), in_30s(),
                        exp::kServiceMaxFrameBytes))
    return "";
  std::string table;
  while (true) {
    const auto payload =
        util::recv_frame(fd, in_30s(), exp::kServiceMaxFrameBytes);
    if (!payload) return "";
    const auto rsp = exp::ServiceResponse::parse(*payload);
    if (!rsp || rsp->seq != seq) return "";
    if (rsp->kind == exp::ServiceResponseKind::kTable) table = rsp->text;
    if (rsp->kind == exp::ServiceResponseKind::kError) return "";
    if (rsp->kind == exp::ServiceResponseKind::kDone) return table;
  }
}

struct PhaseResult {
  double qps = 0.0;
  bool tables_identical = true;
};

PhaseResult run_phase(const std::string& store, const core::SweepSpec& spec,
                      std::size_t query_threads,
                      const std::string& reference) {
  exp::ServiceOptions opt;
  opt.store = store;
  opt.poll_ms = 5;
  opt.query_threads = query_threads;
  exp::Service service(opt);
  service.start();
  std::thread daemon([&] { service.run(); });
  const std::uint16_t port = service.port();

  PhaseResult out;
  std::vector<char> client_ok(kClients, 1);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto sock = util::connect_tcp({"127.0.0.1", port}, in_30s());
      if (!sock.valid()) {
        client_ok[c] = 0;
        return;
      }
      for (std::size_t q = 0; q < kQueriesPerClient; ++q) {
        const auto table =
            wire_query(sock.fd(), spec, c * kQueriesPerClient + q + 1);
        if (table != reference) {
          client_ok[c] = 0;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  service.stop();
  daemon.join();

  for (const char ok : client_ok)
    if (!ok) out.tables_identical = false;
  out.qps = secs > 0
                ? static_cast<double>(kClients * kQueriesPerClient) / secs
                : 0.0;
  return out;
}

}  // namespace

int main() {
  log::set_level(log::Level::Warn);
  const std::string store = "/tmp/oracle_bench_service_" +
                            std::to_string(::getpid()) + ".jsonl";
  const auto spec = bench_sweep();
  fabricate_store(spec, store);

  // The answer every query must render, byte for byte.
  const auto agg = exp::Aggregator::from_jsonl_files({store});
  const std::string reference =
      exp::Aggregator::to_table(agg.summarize(), "speedup");

  const auto serial = run_phase(store, spec, 1, reference);
  const auto concurrent = run_phase(store, spec, 0, reference);
  std::remove(store.c_str());

  const unsigned cpus = std::thread::hardware_concurrency();
  const double speedup =
      serial.qps > 0 ? concurrent.qps / serial.qps : 0.0;
  std::printf(
      "{\"bench\":\"service_concurrency\",\"cpus\":%u,\"clients\":%zu,"
      "\"queries_per_client\":%zu,\"serial_qps\":%.1f,"
      "\"concurrent_qps\":%.1f,\"speedup\":%.3f,\"tables_identical\":%s}\n",
      cpus, kClients, kQueriesPerClient, serial.qps, concurrent.qps, speedup,
      serial.tables_identical && concurrent.tables_identical ? "true"
                                                             : "false");
  return serial.tables_identical && concurrent.tables_identical ? 0 : 1;
}
