// Appendix I of the paper: "Simulation Experiments for the Hypercubes" —
// utilization vs number of goals for Fibonacci on hypercubes of dimension
// 2, 5, 7 and 8 (plots A-1 .. A-5). CWN uses radius = diameter = dimension
// (the natural analogue of the grid settings); GM uses the grid watermarks.

#include "bench_common.hpp"
#include "topo/graph_algos.hpp"
#include "topo/hypercube.hpp"
#include "workload/fib.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Appendix A-1..A-5 — fib on hypercubes",
               "average PE utilization (%) vs number of goals; CWN vs GM");

  const std::vector<std::uint32_t> fib_args = {7, 9, 11, 13, 15, 18};
  for (const std::uint32_t dim : core::paper::hypercube_dims()) {
    const std::string topo = strfmt("hypercube:%u", dim);
    const std::string cwn_spec =
        strfmt("cwn:radius=%u,horizon=%u", std::max(2u, dim),
               std::min(2u, std::max(1u, dim / 2)));
    const std::string gm_spec = core::paper::gm_spec(Family::Grid);

    std::vector<ExperimentConfig> configs;
    for (const auto& wl : core::paper::fib_specs()) {
      ExperimentConfig cwn = core::paper::base_config();
      cwn.topology = topo;
      cwn.strategy = cwn_spec;
      cwn.workload = wl;
      ExperimentConfig gm = cwn;
      gm.strategy = gm_spec;
      configs.push_back(cwn);
      configs.push_back(gm);
    }
    const auto results = run_ensemble(configs);

    std::printf("-- Hypercube of dimension %u (%u PEs), query: Fibonacci --\n",
                dim, 1u << dim);
    TextTable t({"goals", "CWN util %", "GM util %", "ratio"});
    for (std::size_t i = 0; i < fib_args.size(); ++i) {
      const auto& cwn = results[2 * i];
      const auto& gm = results[2 * i + 1];
      t.add_row({std::to_string(workload::FibWorkload::tree_size(fib_args[i])),
                 fixed(cwn.utilization_percent(), 1),
                 fixed(gm.utilization_percent(), 1),
                 fixed(speedup_ratio(cwn, gm), 2)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("expected shape: same ordering as the grids (CWN ahead), with "
              "margins between the grid and DLM cases (hypercube diameters "
              "sit between the two).\n");
  return 0;
}
