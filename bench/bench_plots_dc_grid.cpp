// Plots 6-10 of the paper: average PE utilization (%) versus problem size
// for the divide-and-conquer program on the five grid sizes, CWN vs GM.
// On grids the paper finds "CWN is a clear winner by substantial margins".

#include "bench_common.hpp"
#include "workload/dc.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Plots 6-10 — dc on grids",
               "average PE utilization (%) vs number of goals; CWN vs GM");

  const std::vector<int> dc_ns = {21, 55, 144, 377, 987, 4181};
  int plot_no = 6;
  const auto& sizes = core::paper::size_points();
  for (auto it = sizes.rbegin(); it != sizes.rend(); ++it, ++plot_no) {
    std::vector<ExperimentConfig> configs;
    for (const auto& wl : core::paper::dc_specs()) {
      auto [cwn, gm] = paired_configs(Family::Grid, it->grid_spec, wl);
      configs.push_back(cwn);
      configs.push_back(gm);
    }
    const auto results = run_ensemble(configs);

    std::printf("-- Plot %d: %s (%u PEs), query: divide and conquer --\n",
                plot_no, it->grid_spec.c_str(), it->pes);
    TextTable t({"goals", "CWN util %", "GM util %", "ratio"});
    for (std::size_t i = 0; i < dc_ns.size(); ++i) {
      const auto& cwn = results[2 * i];
      const auto& gm = results[2 * i + 1];
      t.add_row({std::to_string(
                     workload::DcWorkload::tree_size(1, dc_ns[i])),
                 fixed(cwn.utilization_percent(), 1),
                 fixed(gm.utilization_percent(), 1),
                 fixed(speedup_ratio(cwn, gm), 2)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("expected shape: CWN a clear winner by substantial margins on "
              "every grid size; GM flattens on large grids (the 'vicious "
              "cycle' of Section 4).\n");
  return 0;
}
