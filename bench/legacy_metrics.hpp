#pragma once
// Frozen pre-refactor stats layer: the heap-per-frame LoadMonitor and
// TimeSeries exactly as they existed before the columnar MetricsRecorder
// replaced them. Kept verbatim (modulo the namespace) as the comparison
// baseline:
//   - bench_metrics_recorder measures live-vs-legacy sampling cost and
//     verifies the recorder's steady state allocates nothing while this
//     path allocates one vector per frame, and
//   - tests/test_metrics_recorder.cpp pins the recorder-backed views'
//     render_frame()/to_csv() output byte-identical to this code.
// Do not "improve" this file; its value is that it does not change.

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/error.hpp"

namespace oracle::bench::legacy {

/// Pre-refactor per-PE utilization frame store (one owned vector per frame).
class LoadMonitor {
 public:
  LoadMonitor() = default;
  explicit LoadMonitor(std::uint32_t num_pes) : num_pes_(num_pes) {}

  std::uint32_t num_pes() const noexcept { return num_pes_; }
  std::size_t frames() const noexcept { return times_.size(); }
  bool empty() const noexcept { return times_.empty(); }

  void add_frame(sim::SimTime t, std::vector<double> utilization) {
    if (num_pes_ == 0) num_pes_ = static_cast<std::uint32_t>(utilization.size());
    ORACLE_ASSERT_MSG(utilization.size() == num_pes_,
                      "frame size does not match PE count");
    ORACLE_ASSERT_MSG(times_.empty() || t >= times_.back(),
                      "frames must be recorded in time order");
    times_.push_back(t);
    frames_.push_back(std::move(utilization));
  }

  sim::SimTime time_of(std::size_t frame) const { return times_.at(frame); }
  const std::vector<double>& frame(std::size_t i) const { return frames_.at(i); }

  std::vector<double> pe_series(std::uint32_t pe) const {
    ORACLE_ASSERT(pe < num_pes_);
    std::vector<double> series;
    series.reserve(frames_.size());
    for (const auto& f : frames_) series.push_back(f[pe]);
    return series;
  }

  static char shade(double utilization) {
    static const char kRamp[] = {'.', ':', '-', '=', '+',
                                 'o', 'x', '*', '%', '@'};
    if (utilization <= 0.0) return kRamp[0];
    if (utilization >= 1.0) return kRamp[9];
    return kRamp[static_cast<int>(utilization * 10.0)];
  }

  std::string render_frame(std::size_t i, std::uint32_t rows,
                           std::uint32_t cols) const {
    ORACLE_ASSERT(i < frames_.size());
    ORACLE_ASSERT_MSG(static_cast<std::uint64_t>(rows) * cols == num_pes_,
                      "rows*cols must equal the PE count");
    const auto& f = frames_[i];
    std::string out;
    out.reserve(static_cast<std::size_t>(rows) * (cols + 1));
    for (std::uint32_t r = 0; r < rows; ++r) {
      for (std::uint32_t c = 0; c < cols; ++c)
        out += shade(f[static_cast<std::size_t>(r) * cols + c]);
      out += '\n';
    }
    return out;
  }

 private:
  std::uint32_t num_pes_ = 0;
  std::vector<sim::SimTime> times_;
  std::vector<std::vector<double>> frames_;
};

/// Pre-refactor owning time series.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void add(sim::SimTime t, double value) {
    times_.push_back(t);
    values_.push_back(value);
  }

  const std::string& name() const noexcept { return name_; }
  std::size_t size() const noexcept { return times_.size(); }
  bool empty() const noexcept { return times_.empty(); }

  sim::SimTime time_at(std::size_t i) const { return times_.at(i); }
  double value_at(std::size_t i) const { return values_.at(i); }

  double max_value() const noexcept {
    double best = 0.0;
    for (double v : values_) best = std::max(best, v);
    return best;
  }

  double mean_value() const noexcept {
    if (values_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
  }

  std::string to_csv() const {
    std::ostringstream os;
    os << "time," << (name_.empty() ? "value" : name_) << '\n';
    for (std::size_t i = 0; i < times_.size(); ++i)
      os << times_[i] << ',' << values_[i] << '\n';
    return os.str();
  }

 private:
  std::string name_;
  std::vector<sim::SimTime> times_;
  std::vector<double> values_;
};

}  // namespace oracle::bench::legacy
