// Ablation: heterogeneous / degraded machines. The paper assumes identical
// PEs; real message-passing machines drift (thermal throttling, partial
// faults). This bench injects slow PEs (deterministic selection, every
// phase Nx slower) and measures how gracefully each scheme degrades —
// dynamic schemes should route work away from slow PEs because their
// queues stay long.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Ablation — heterogeneous machines (degradation injection)",
               "grid:10x10, fib:15; slow PEs run every phase 4x slower");

  // The whole degradation plane runs as one engine batch.
  constexpr const char* kStrategies[] = {
      "cwn:radius=9,horizon=2", "gm:hwm=2,lwm=1,interval=20",
      "acwn:radius=9,horizon=2", "random", "local"};
  std::vector<ExperimentConfig> configs;
  for (const int percent : {0, 10, 25, 50}) {
    for (const char* strat : kStrategies) {
      ExperimentConfig cfg = core::paper::base_config();
      cfg.topology = "grid:10x10";
      cfg.strategy = strat;
      cfg.workload = "fib:15";
      cfg.machine.slow_pe_percent = percent;
      cfg.machine.slow_factor = 4;
      configs.push_back(cfg);
    }
  }
  const auto results = run_ensemble(configs);

  TextTable t({"slow PEs %", "strategy", "util %", "speedup", "util CV",
               "max-min util gap"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    t.add_row({std::to_string(configs[i].machine.slow_pe_percent), r.strategy,
               fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
               fixed(r.utilization_cv, 2),
               fixed(r.max_min_utilization_gap, 2)});
    if ((i + 1) % std::size(kStrategies) == 0) t.add_rule();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("reading: speedup is capacity-relative (busy time includes the "
              "slowdown), so watch the utilization CV — load-aware schemes "
              "keep it low even as the machine degrades; load-blind pushes "
              "let slow PEs back up.\n");
  return 0;
}
