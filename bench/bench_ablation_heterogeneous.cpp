// Ablation: heterogeneous / degraded machines. The paper assumes identical
// PEs; real message-passing machines drift (thermal throttling, partial
// faults). This bench injects slow PEs (deterministic selection, every
// phase Nx slower) and measures how gracefully each scheme degrades —
// dynamic schemes should route work away from slow PEs because their
// queues stay long.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Ablation — heterogeneous machines (degradation injection)",
               "grid:10x10, fib:15; slow PEs run every phase 4x slower");

  TextTable t({"slow PEs %", "strategy", "util %", "speedup", "util CV",
               "max-min util gap"});
  for (const int percent : {0, 10, 25, 50}) {
    for (const char* strat :
         {"cwn:radius=9,horizon=2", "gm:hwm=2,lwm=1,interval=20",
          "acwn:radius=9,horizon=2", "random", "local"}) {
      ExperimentConfig cfg = core::paper::base_config();
      cfg.topology = "grid:10x10";
      cfg.strategy = strat;
      cfg.workload = "fib:15";
      cfg.machine.slow_pe_percent = percent;
      cfg.machine.slow_factor = 4;
      const auto r = core::run_experiment(cfg);
      t.add_row({std::to_string(percent), r.strategy,
                 fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
                 fixed(r.utilization_cv, 2),
                 fixed(r.max_min_utilization_gap, 2)});
    }
    t.add_rule();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("reading: speedup is capacity-relative (busy time includes the "
              "slowdown), so watch the utilization CV — load-aware schemes "
              "keep it low even as the machine degrades; load-blind pushes "
              "let slow PEs back up.\n");
  return 0;
}
