// bench_trace_overhead — the zero-cost-off gate for the obs tracer.
//
// Every instrumentation site in the executor/engine is supposed to cost
// one relaxed atomic load + branch when tracing is disabled. This bench
// measures that claim at two granularities:
//   1. sweep throughput: the same in-process batch run with tracing off vs
//      tracing on, against a baseline of bare run_experiment calls (no
//      executor, no sink — the pre-instrumentation reference shape);
//   2. site cost: ns/op of a disabled obs::Span construct+destruct pair in
//      a tight loop.
//
// Output: one JSON object (CI saves it as BENCH_trace.json and asserts
// off_vs_baseline stays within noise of 1.0, i.e. the disabled tracer did
// not tax the hot path).

#include <chrono>
#include <cstdio>
#include <vector>

#include "oracle.hpp"

namespace {

using namespace oracle;
using Clock = std::chrono::steady_clock;

std::vector<core::ExperimentConfig> bench_sweep() {
  core::ExperimentConfig base = core::paper::base_config();
  base.topology = "grid:6x6";
  base.workload = "fib:11";
  return core::SweepBuilder(base)
      .strategies({"cwn", "gm", "random"})
      .seeds({1, 2, 3, 4, 5, 6, 7, 8})
      .build();
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Serial run_experiment over the sweep: the uninstrumented reference
/// shape (the executor adds claim/commit machinery on top of this).
double time_serial(const std::vector<core::ExperimentConfig>& configs) {
  const auto t0 = Clock::now();
  for (const auto& cfg : configs) (void)core::run_experiment(cfg);
  return seconds_since(t0);
}

/// One single-threaded batch-engine pass (no store: results discarded),
/// the code path every instrumentation site lives on.
double time_batch(const std::vector<core::ExperimentConfig>& configs) {
  exp::JobQueue queue(configs);
  exp::MemorySink sink;
  exp::ExecutorOptions opts;
  opts.workers = 1;
  opts.progress = false;
  exp::Executor executor(opts);
  const auto t0 = Clock::now();
  const auto report = executor.run(queue, sink);
  ORACLE_ASSERT(report.ok());
  return seconds_since(t0);
}

template <typename F>
double best_of(int reps, F&& f) {
  double best = f();
  for (int i = 1; i < reps; ++i) best = std::min(best, f());
  return best;
}

}  // namespace

int main() {
  const auto configs = bench_sweep();
  constexpr int kReps = 3;

  // Warm the topology/routing caches once so no variant pays first-use
  // construction.
  (void)time_serial(configs);

  const double serial_s = best_of(kReps, [&] { return time_serial(configs); });
  const double off_s = best_of(kReps, [&] { return time_batch(configs); });

  obs::Tracer::enable(0, "bench_trace_overhead");
  const double on_s = best_of(kReps, [&] {
    obs::Tracer::clear();
    return time_batch(configs);
  });
  const std::size_t traced_events = obs::Tracer::buffered();
  obs::Tracer::disable();

  // Disabled-site cost: a Span that never activates, back to back. Volatile
  // sink keeps the loop from folding away.
  constexpr std::size_t kSpanIters = 50'000'000;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kSpanIters; ++i) {
    obs::Span span("bench", "noop");
  }
  const double span_ns = seconds_since(t0) * 1e9 / kSpanIters;

  const double jobs = static_cast<double>(configs.size());
  // Ratios > 1 mean the batch engine variant is *faster* than the serial
  // baseline reference (it can be: commit pipelining overlaps I/O-free
  // drain with the next job). The gate only cares that "off" is not
  // materially slower.
  const double off_vs_baseline = serial_s / off_s;
  const double on_vs_off = off_s / on_s;

  std::printf(
      "{\"bench\":\"trace_overhead\",\"jobs\":%zu,"
      "\"serial_s\":%.4f,\"traced_off_s\":%.4f,\"traced_on_s\":%.4f,"
      "\"off_vs_baseline\":%.4f,\"on_vs_off\":%.4f,"
      "\"disabled_span_ns\":%.3f,\"traced_events\":%zu,"
      "\"serial_jobs_per_s\":%.1f,\"off_jobs_per_s\":%.1f,"
      "\"on_jobs_per_s\":%.1f}\n",
      configs.size(), serial_s, off_s, on_s, off_vs_baseline, on_vs_off,
      span_ns, traced_events, jobs / serial_s, jobs / off_s, jobs / on_s);
  return 0;
}
