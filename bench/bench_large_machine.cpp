// bench_large_machine — single-run throughput at 10^5+ PEs: the serial
// engine vs the conservative parallel engine on the same model.
//
// Scenario: a 131,072-PE hypercube (hypercube:17 — diffusion is
// logarithmic, so one root goal saturates the machine quickly) under CWN
// with a long broadcast interval, computing dc(1, 400000) (~1.6M goal
// phases, ~28M events). The parallel run uses a pinned partition count
// (8 shards), so its trajectory is identical for ANY worker thread count;
// only the wall clock changes.
//
// Output: one JSON object on stdout (redirect to BENCH_large.json). The
// `cpus` field lets CI gate the speedup assertion — on a single-core host
// the windows serialize and the barrier overhead is all that's left.
//
// Usage: bench_large_machine [--threads N] [--quick]
//   --threads N   worker count for the parallel leg (default 4)
//   --quick       quarter-size workload (local smoke, not for BENCH files)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "core/presets.hpp"
#include "core/simulator.hpp"

namespace {

struct Leg {
  double seconds = 0.0;
  oracle::stats::RunResult result;
};

Leg run_leg(const oracle::core::ExperimentConfig& base, unsigned threads,
            unsigned partitions) {
  oracle::core::ExperimentConfig cfg = base;
  cfg.machine.sim_threads = threads;
  cfg.machine.sim_partitions = partitions;
  Leg leg;
  const auto t0 = std::chrono::steady_clock::now();
  leg.result = oracle::core::run_experiment(cfg);
  leg.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 4;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
      if (threads < 1) threads = 1;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: bench_large_machine [--threads N] [--quick]\n");
      return 2;
    }
  }

  oracle::core::ExperimentConfig base = oracle::core::paper::base_config();
  base.topology = "hypercube:17";  // 131,072 PEs
  base.strategy = "cwn:radius=2,horizon=2,interval=400";
  base.workload = quick ? "dc:1:100000" : "dc:1:400000";
  base.machine.hop_latency = 4;
  base.machine.ctrl_latency = 2;
  base.machine.seed = 1;
  base.machine.max_events = 4'000'000'000ull;
  const unsigned partitions = 8;

  std::fprintf(stderr,
               "bench_large_machine: %s / %s / %s, serial then %u threads "
               "(%u partitions)\n",
               base.topology.c_str(), base.strategy.c_str(),
               base.workload.c_str(), threads, partitions);

  const Leg serial = run_leg(base, 1, partitions);
  std::fprintf(stderr, "  serial:   %.2fs (%.2fM events/s)\n", serial.seconds,
               serial.result.events_executed / serial.seconds / 1e6);
  const Leg parallel = run_leg(base, threads, partitions);
  std::fprintf(stderr, "  parallel: %.2fs (%.2fM events/s)\n",
               parallel.seconds,
               parallel.result.events_executed / parallel.seconds / 1e6);

  // The parallel trajectory is a function of the partition count alone, so
  // the goal count must agree with serial exactly (the completion time may
  // differ slightly: K schedulers interleave control traffic differently).
  const bool goals_match =
      serial.result.goals_executed == parallel.result.goals_executed;

  // `cpus` gates the CI speedup assertion (see ci.yml): with < 4 hardware
  // threads the parallel legs time-slice one core and can only lose.
  std::printf(
      "{\n"
      "  \"name\": \"large_machine_serial_vs_parallel\",\n"
      "  \"topology\": \"%s\",\n"
      "  \"workload\": \"%s\",\n"
      "  \"num_pes\": %u,\n"
      "  \"threads\": %u,\n"
      "  \"partitions\": %u,\n"
      "  \"cpus\": %u,\n"
      "  \"serial_seconds\": %.4f,\n"
      "  \"parallel_seconds\": %.4f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"serial_events\": %llu,\n"
      "  \"parallel_events\": %llu,\n"
      "  \"serial_completion\": %lld,\n"
      "  \"parallel_completion\": %lld,\n"
      "  \"goals\": %llu,\n"
      "  \"goals_match\": %s\n"
      "}\n",
      base.topology.c_str(), base.workload.c_str(), serial.result.num_pes,
      threads, partitions, std::thread::hardware_concurrency(),
      serial.seconds, parallel.seconds, serial.seconds / parallel.seconds,
      static_cast<unsigned long long>(serial.result.events_executed),
      static_cast<unsigned long long>(parallel.result.events_executed),
      static_cast<long long>(serial.result.completion_time),
      static_cast<long long>(parallel.result.completion_time),
      static_cast<unsigned long long>(serial.result.goals_executed),
      goals_match ? "true" : "false");
  return goals_match ? 0 : 1;
}
