// Table 3 of the paper: "distribution of distances traveled by messages for
// Fibonacci of 18 on a 10x10 grid". CWN spends ~3 hops per goal with a
// spike at the radius ("A message that has gone that far must stop at that
// distance"); GM averages under 1 hop with most goals never moving.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Table 3 — Distribution of goal-message distances",
               "fib(18) on the 10x10 grid; paper parameters (CWN r=9 h=2; "
               "GM hwm=2 lwm=1 i=20)");

  auto [cwn_cfg, gm_cfg] =
      paired_configs(Family::Grid, "grid:10x10", "fib:18");
  const auto results = run_ensemble({cwn_cfg, gm_cfg});
  const auto& cwn = results[0];
  const auto& gm = results[1];

  const std::size_t buckets =
      std::max(cwn.goal_hops.buckets(), gm.goal_hops.buckets());
  std::vector<std::string> header = {"hops"};
  for (std::size_t h = 0; h < buckets; ++h) header.push_back(std::to_string(h));
  header.push_back("Average");
  TextTable t(header);

  auto add = [&](const char* label, const stats::Histogram& hist) {
    std::vector<std::string> row = {label};
    for (std::size_t h = 0; h < buckets; ++h)
      row.push_back(std::to_string(hist.count(h)));
    row.push_back(fixed(hist.mean(), 2));
    t.add_row(row);
  };
  add("CWN", cwn.goal_hops);
  add("GM", gm.goal_hops);
  std::printf("%s\n", t.to_string().c_str());

  std::printf(
      "paper reference rows (8361 goals):\n"
      "  CWN: 0 3979 1024 713 514 375 298 223 202 1032  avg 3.15\n"
      "  GM : 4068 2372 1045 527 195 84 43 20 4 3       avg 0.92\n\n");
  std::printf("shape checks: CWN spike at radius bucket (9): %llu; "
              "CWN avg / GM avg = %.1fx (paper: 3.4x); "
              "GM 0-hop share = %.0f%% (paper: 49%%)\n",
              static_cast<unsigned long long>(cwn.goal_hops.count(9)),
              gm.avg_goal_distance > 0
                  ? cwn.avg_goal_distance / gm.avg_goal_distance
                  : 0.0,
              100.0 * static_cast<double>(gm.goal_hops.count(0)) /
                  static_cast<double>(gm.goal_hops.total()));
  return 0;
}
