// The Fibonacci analogues of Plots 1-10. The paper omits these plots ("The
// Fibonacci plots are very similar, so we omit them") but reports all 120
// fib runs in Table 2; this bench regenerates the utilization-vs-goals
// series so the similarity claim can be checked directly.

#include "bench_common.hpp"
#include "workload/fib.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Plots (omitted in paper) — fib on grids and DLMs",
               "average PE utilization (%) vs number of goals; CWN vs GM");

  const std::vector<std::uint32_t> fib_args = {7, 9, 11, 13, 15, 18};
  for (const Family family : {Family::Dlm, Family::Grid}) {
    const auto& sizes = core::paper::size_points();
    for (auto it = sizes.rbegin(); it != sizes.rend(); ++it) {
      const std::string topo =
          family == Family::Grid ? it->grid_spec : it->dlm_spec;
      std::vector<ExperimentConfig> configs;
      for (const auto& wl : core::paper::fib_specs()) {
        auto [cwn, gm] = paired_configs(family, topo, wl);
        configs.push_back(cwn);
        configs.push_back(gm);
      }
      const auto results = run_ensemble(configs);

      std::printf("-- %s (%u PEs), query: Fibonacci --\n", topo.c_str(),
                  it->pes);
      TextTable t({"goals", "CWN util %", "GM util %", "ratio"});
      for (std::size_t i = 0; i < fib_args.size(); ++i) {
        const auto& cwn = results[2 * i];
        const auto& gm = results[2 * i + 1];
        t.add_row({std::to_string(workload::FibWorkload::tree_size(fib_args[i])),
                   fixed(cwn.utilization_percent(), 1),
                   fixed(gm.utilization_percent(), 1),
                   fixed(speedup_ratio(cwn, gm), 2)});
      }
      std::printf("%s\n", t.to_string().c_str());
    }
  }
  std::printf("expected shape: 'very similar' to the dc plots (the paper's "
              "stated reason for omitting them).\n");
  return 0;
}
