// Ablation: the communication co-processor assumption (paper §3.1).
// "We assume a communication co-processor to handle the routing and
// load-balancing functions. Without such a co-processor, the gradient
// model will suffer more, because it needs to execute a more complex code
// and more frequently." With the co-processor disabled, CWN charges 2
// units per load broadcast and GM charges 6 units per gradient cycle to
// the PE itself.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Ablation — communication co-processor (paper §3.1 claim)",
               "LB overhead charged to the PE when no co-processor exists");

  // One engine batch over the whole (topology x scheme x co-processor)
  // plane; the with/without pairing is recovered by index afterwards.
  std::vector<ExperimentConfig> configs;
  for (const char* topo : {"grid:10x10", "dlm:5:10x10"}) {
    const Family family =
        std::string(topo).rfind("dlm", 0) == 0 ? Family::Dlm : Family::Grid;
    for (const bool cwn : {true, false}) {
      for (const bool coproc : {true, false}) {
        ExperimentConfig cfg = core::paper::base_config();
        cfg.topology = topo;
        cfg.strategy = cwn ? core::paper::cwn_spec(family)
                           : core::paper::gm_spec(family);
        cfg.workload = "fib:15";
        cfg.machine.lb_coprocessor = coproc;
        configs.push_back(cfg);
      }
    }
  }
  const auto results = run_ensemble(configs);

  TextTable t({"topology", "strategy", "co-processor", "util %", "speedup",
               "completion", "penalty %"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const bool coproc = configs[i].machine.lb_coprocessor;
    // Penalty = completion-time slowdown vs the with-co-processor run of
    // the same pair, which generation order puts immediately before this
    // one (checked, so a reordering of the loops above cannot silently
    // pair the wrong runs). Utilization is misleading here: without a
    // co-processor the LB overhead itself counts as PE busy time.
    double penalty = 0.0;
    if (!coproc) {
      ORACLE_REQUIRE(i > 0 && configs[i - 1].machine.lb_coprocessor &&
                         configs[i - 1].strategy == configs[i].strategy &&
                         configs[i - 1].topology == configs[i].topology,
                     "config generation no longer pairs coproc runs");
      penalty = (static_cast<double>(r.completion_time) /
                     static_cast<double>(results[i - 1].completion_time) -
                 1.0) * 100.0;
    }
    const bool cwn = configs[i].strategy.rfind("cwn", 0) == 0;
    t.add_row({configs[i].topology, cwn ? "CWN" : "GM", coproc ? "yes" : "no",
               fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
               std::to_string(r.completion_time), fixed(penalty, 1)});
    if ((i + 1) % 4 == 0) t.add_rule();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected: both schemes slow down without the co-processor; "
              "GM's penalty is larger (complex code, every 20 units), "
              "confirming the paper's §3.1 remark.\n");
  return 0;
}
