// Ablation: the communication co-processor assumption (paper §3.1).
// "We assume a communication co-processor to handle the routing and
// load-balancing functions. Without such a co-processor, the gradient
// model will suffer more, because it needs to execute a more complex code
// and more frequently." With the co-processor disabled, CWN charges 2
// units per load broadcast and GM charges 6 units per gradient cycle to
// the PE itself.

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Ablation — communication co-processor (paper §3.1 claim)",
               "LB overhead charged to the PE when no co-processor exists");

  TextTable t({"topology", "strategy", "co-processor", "util %", "speedup",
               "completion", "penalty %"});
  for (const char* topo : {"grid:10x10", "dlm:5:10x10"}) {
    const Family family =
        std::string(topo).rfind("dlm", 0) == 0 ? Family::Dlm : Family::Grid;
    for (const bool cwn : {true, false}) {
      sim::SimTime with_coproc = 0;
      for (const bool coproc : {true, false}) {
        ExperimentConfig cfg = core::paper::base_config();
        cfg.topology = topo;
        cfg.strategy = cwn ? core::paper::cwn_spec(family)
                           : core::paper::gm_spec(family);
        cfg.workload = "fib:15";
        cfg.machine.lb_coprocessor = coproc;
        const auto r = core::run_experiment(cfg);
        if (coproc) with_coproc = r.completion_time;
        // Penalty = completion-time slowdown. (Utilization is misleading
        // here: without a co-processor the LB overhead itself counts as
        // PE busy time.)
        const double penalty =
            coproc ? 0.0
                   : (static_cast<double>(r.completion_time) /
                          static_cast<double>(with_coproc) -
                      1.0) * 100.0;
        t.add_row({topo, cwn ? "CWN" : "GM", coproc ? "yes" : "no",
                   fixed(r.utilization_percent(), 1), fixed(r.speedup, 1),
                   std::to_string(r.completion_time), fixed(penalty, 1)});
      }
    }
    t.add_rule();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("expected: both schemes slow down without the co-processor; "
              "GM's penalty is larger (complex code, every 20 units), "
              "confirming the paper's §3.1 remark.\n");
  return 0;
}
