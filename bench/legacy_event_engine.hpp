#pragma once
// The PR-1 event engine, frozen verbatim as the benchmark baseline:
// std::function callbacks over a std::push_heap/std::pop_heap binary heap,
// with O(n) cancellation (heap scan + lazy tombstone list). The live engine
// in sim/scheduler.hpp replaced this with inline callbacks and an indexed
// 4-ary heap + generation-stamped slot map; bench_engine_micro runs both so
// every build reports the before/after ratio on identical workloads.
//
// Do not "fix" or modernize this copy — its value is being the unchanged
// baseline.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"
#include "util/error.hpp"

namespace oracle::bench::legacy {

struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const noexcept { return id != 0; }
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  sim::SimTime now() const noexcept { return now_; }

  void reserve(std::size_t n) { heap_.reserve(n); }

  EventHandle schedule_at(sim::SimTime when, Callback cb) {
    ORACLE_ASSERT_MSG(when >= now_, "scheduling into the past");
    Entry entry{when, next_seq_++, next_id_++, std::move(cb)};
    const EventHandle handle{entry.id};
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_events_;
    return handle;
  }

  EventHandle schedule_after(sim::Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  bool cancel(EventHandle handle) {
    if (!handle.valid()) return false;
    const bool present =
        std::any_of(heap_.begin(), heap_.end(),
                    [&](const Entry& e) { return e.id == handle.id; });
    if (!present || is_cancelled(handle.id)) return false;
    cancelled_.push_back(handle.id);
    --live_events_;
    return true;
  }

  bool empty() const noexcept { return live_events_ == 0; }
  std::size_t pending() const noexcept { return live_events_; }
  std::uint64_t executed() const noexcept { return executed_; }

  bool step() {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Entry entry = std::move(heap_.back());
      heap_.pop_back();
      if (is_cancelled(entry.id)) {
        forget_cancelled(entry.id);
        continue;
      }
      now_ = entry.time;
      --live_events_;
      ++executed_;
      entry.cb();
      return true;
    }
    return false;
  }

  sim::SimTime run() {
    while (!heap_.empty()) {
      if (!step()) break;
    }
    return now_;
  }

 private:
  struct Entry {
    sim::SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    Callback cb;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool is_cancelled(std::uint64_t id) const {
    return std::find(cancelled_.begin(), cancelled_.end(), id) !=
           cancelled_.end();
  }

  void forget_cancelled(std::uint64_t id) {
    auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    ORACLE_ASSERT(it != cancelled_.end());
    *it = cancelled_.back();
    cancelled_.pop_back();
  }

  std::vector<Entry> heap_;
  std::vector<std::uint64_t> cancelled_;
  std::size_t live_events_ = 0;
  sim::SimTime now_ = sim::kTimeZero;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace oracle::bench::legacy
