// Microbenchmarks of the discrete-event substrate (google-benchmark):
// event scheduling throughput, resource contention handling, topology
// construction, routing-table build, and a small end-to-end simulation.
// These quantify the cost of the ORACLE substitution (DESIGN.md §2).

#include <benchmark/benchmark.h>

#include "core/simulator.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "topo/dlm.hpp"
#include "topo/factory.hpp"
#include "topo/graph_algos.hpp"
#include "topo/grid.hpp"

namespace {

using namespace oracle;

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i)
      sched.schedule_at(i % 64, [&fired] { ++fired; });
    sched.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerEventThroughput)->Arg(1024)->Arg(65536);

void BM_SchedulerCascade(benchmark::State& state) {
  // Each event schedules the next: measures per-event latency, not heap
  // bulk behaviour.
  for (auto _ : state) {
    sim::Scheduler sched;
    const int n = static_cast<int>(state.range(0));
    int remaining = n;
    std::function<void()> step = [&] {
      if (--remaining > 0) sched.schedule_after(1, step);
    };
    sched.schedule_at(0, step);
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerCascade)->Arg(65536);

void BM_ResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    sim::Resource res(sched, "bench", 1);
    const int n = static_cast<int>(state.range(0));
    int done = 0;
    for (int i = 0; i < n; ++i) res.acquire_for(3, [&done] { ++done; });
    sched.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResourceContention)->Arg(4096);

void BM_TopologyBuildGrid(benchmark::State& state) {
  for (auto _ : state) {
    topo::Grid2D grid(20, 20, false);
    benchmark::DoNotOptimize(grid.num_links());
  }
}
BENCHMARK(BM_TopologyBuildGrid);

void BM_TopologyBuildDlm(benchmark::State& state) {
  for (auto _ : state) {
    topo::DoubleLatticeMesh dlm(5, 20, 20);
    benchmark::DoNotOptimize(dlm.num_links());
  }
}
BENCHMARK(BM_TopologyBuildDlm);

void BM_RoutingTableBuild(benchmark::State& state) {
  topo::Grid2D grid(20, 20, false);
  for (auto _ : state) {
    topo::RoutingTable routes(grid);
    benchmark::DoNotOptimize(routes.next_hop(0, 399));
  }
}
BENCHMARK(BM_RoutingTableBuild);

void BM_EndToEndSmallRun(benchmark::State& state) {
  for (auto _ : state) {
    core::ExperimentConfig cfg;
    cfg.topology = "grid:5x5";
    cfg.strategy = "cwn:radius=9,horizon=2";
    cfg.workload = "fib:11";
    auto r = core::run_experiment(cfg);
    benchmark::DoNotOptimize(r.completion_time);
  }
}
BENCHMARK(BM_EndToEndSmallRun);

}  // namespace

BENCHMARK_MAIN();
