// Microbenchmarks of the discrete-event substrate (google-benchmark):
// event scheduling throughput, cascade latency, cancellation churn,
// resource contention, topology/routing construction, and a small
// end-to-end simulation. These quantify the cost of the ORACLE
// substitution (DESIGN.md §2).
//
// The scheduler benchmarks run twice: once on the live engine (inline
// callbacks + message pool + indexed 4-ary heap + O(1) cancel) and once on
// the frozen PR-1 baseline (std::function + binary heap + O(n) cancel,
// legacy_event_engine.hpp), so every build reports the before/after ratio.
// Each pair routes the same logical workload — machine::Message goal hops —
// through each engine's own idiom: the baseline captures the ~100-byte
// message by value (heap-allocated by std::function on every event, exactly
// what the machine model used to pay per hop); the live engine parks it in
// a MessagePool and captures a pool index inline.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/simulator.hpp"
#include "legacy_event_engine.hpp"
#include "machine/machine.hpp"
#include "machine/message.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "topo/dlm.hpp"
#include "topo/factory.hpp"
#include "topo/graph_algos.hpp"
#include "topo/grid.hpp"

namespace {

using namespace oracle;

machine::Message hop_message(std::uint64_t goal_id) {
  machine::Message m = machine::Message::goal(
      goal_id, workload::GoalSpec{static_cast<std::int64_t>(goal_id), 0, 3},
      goal_id / 2, 7);
  m.hops = 2;
  m.src = 3;
  return m;
}

// Engines are constructed once and reused across iterations (delays are
// relative via schedule_after): the steady state of a long-lived Machine
// run, not per-run setup cost.

void BM_SchedulerEventThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Scheduler sched;
  sched.reserve(static_cast<std::size_t>(n));
  machine::MessagePool pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      const std::uint32_t slot =
          pool.put(hop_message(static_cast<std::uint64_t>(i)));
      sched.schedule_after(i % 64, [&pool, slot, &sum] {
        const machine::Message m = pool.take(slot);
        sum += m.goal_id + m.hops;
      });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerEventThroughput)->Arg(1024)->Arg(65536);

void BM_LegacySchedulerEventThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  bench::legacy::Scheduler sched;
  sched.reserve(static_cast<std::size_t>(n));
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      sched.schedule_after(
          i % 64, [m = hop_message(static_cast<std::uint64_t>(i)), &sum] {
            sum += m.goal_id + m.hops;
          });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LegacySchedulerEventThroughput)->Arg(1024)->Arg(65536);

// Each event forwards its message one hop and reschedules itself: measures
// per-event latency, not heap bulk behaviour.

struct LiveCascadeHop {
  sim::Scheduler* sched;
  machine::MessagePool* pool;
  int* remaining;
  std::uint32_t slot;

  void operator()() const {
    if (--*remaining > 0) {
      // Forward one hop: the message stays pooled, as in
      // Machine::transmit_pooled — only transport fields are touched.
      pool->at(slot).hops += 1;
      sched->schedule_after(1, *this);
    } else {
      pool->release(slot);
    }
  }
};

void BM_SchedulerCascade(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::Scheduler sched;
  sched.reserve(16);
  machine::MessagePool pool;
  pool.reserve(16);
  for (auto _ : state) {
    int remaining = n;
    sched.schedule_after(0, LiveCascadeHop{&sched, &pool, &remaining,
                                           pool.put(hop_message(1))});
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerCascade)->Arg(65536);

struct LegacyCascadeHop {
  bench::legacy::Scheduler* sched;
  int* remaining;
  machine::Message msg;

  void operator()() const {
    if (--*remaining > 0) {
      LegacyCascadeHop next{sched, remaining, msg};
      next.msg.hops += 1;
      sched->schedule_after(1, std::move(next));
    }
  }
};

void BM_LegacySchedulerCascade(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  bench::legacy::Scheduler sched;
  sched.reserve(16);
  for (auto _ : state) {
    int remaining = n;
    sched.schedule_after(0,
                         LegacyCascadeHop{&sched, &remaining, hop_message(1)});
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LegacySchedulerCascade)->Arg(65536);

/// Timer-reset churn: schedule n events, cancel every other one, run the
/// rest. The live engine cancels in O(1) via the generation-stamped slot
/// map; the legacy engine scans the heap per cancel (O(n)).
template <typename Sched>
void run_cancel_churn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Sched sched;
  sched.reserve(static_cast<std::size_t>(n));
  std::uint64_t fired = 0;
  using Handle = decltype(sched.schedule_after(0, [&fired] { ++fired; }));
  std::vector<Handle> handles;
  handles.reserve(static_cast<std::size_t>(n));
  for (auto _ : state) {
    handles.clear();
    for (int i = 0; i < n; ++i)
      handles.push_back(
          sched.schedule_after(1 + i % 97, [&fired] { ++fired; }));
    for (int i = 0; i < n; i += 2)
      benchmark::DoNotOptimize(sched.cancel(handles[i]));
    sched.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SchedulerCancelChurn(benchmark::State& state) {
  run_cancel_churn<sim::Scheduler>(state);
}
BENCHMARK(BM_SchedulerCancelChurn)->Arg(4096);

void BM_LegacySchedulerCancelChurn(benchmark::State& state) {
  run_cancel_churn<bench::legacy::Scheduler>(state);
}
BENCHMARK(BM_LegacySchedulerCancelChurn)->Arg(4096);

void BM_ResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    sim::Resource res(sched, "bench", 1);
    const int n = static_cast<int>(state.range(0));
    int done = 0;
    for (int i = 0; i < n; ++i) res.acquire_for(3, [&done] { ++done; });
    sched.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResourceContention)->Arg(4096);

void BM_TopologyBuildGrid(benchmark::State& state) {
  for (auto _ : state) {
    topo::Grid2D grid(20, 20, false);
    benchmark::DoNotOptimize(grid.num_links());
  }
}
BENCHMARK(BM_TopologyBuildGrid);

void BM_TopologyBuildDlm(benchmark::State& state) {
  for (auto _ : state) {
    topo::DoubleLatticeMesh dlm(5, 20, 20);
    benchmark::DoNotOptimize(dlm.num_links());
  }
}
BENCHMARK(BM_TopologyBuildDlm);

void BM_RoutingTableBuild(benchmark::State& state) {
  topo::Grid2D grid(20, 20, false);
  for (auto _ : state) {
    topo::RoutingTable routes(grid);
    benchmark::DoNotOptimize(routes.next_hop(0, 399));
  }
}
BENCHMARK(BM_RoutingTableBuild);

/// What a batch job actually pays for its topology once the shared cache
/// is warm (vs BM_RoutingTableBuild, the per-job cost it replaced).
void BM_SharedTopologyCacheHit(benchmark::State& state) {
  topo::clear_topology_cache();
  (void)topo::make_topology_shared("grid:20x20");
  for (auto _ : state) {
    const topo::SharedTopology shared = topo::make_topology_shared("grid:20x20");
    benchmark::DoNotOptimize(shared.routing->next_hop(0, 399));
  }
}
BENCHMARK(BM_SharedTopologyCacheHit);

void BM_EndToEndSmallRun(benchmark::State& state) {
  for (auto _ : state) {
    core::ExperimentConfig cfg;
    cfg.topology = "grid:5x5";
    cfg.strategy = "cwn:radius=9,horizon=2";
    cfg.workload = "fib:11";
    auto r = core::run_experiment(cfg);
    benchmark::DoNotOptimize(r.completion_time);
  }
}
BENCHMARK(BM_EndToEndSmallRun);

}  // namespace

BENCHMARK_MAIN();
