// Plots 14-16 of the paper: PE utilization versus time on the 10x10 grid
// for Fibonacci of 18, 15 and 9. On grids the paper observes a "stronger
// flattening" of GM: when ~40% of PEs have work, most PEs stop seeing
// enough load to share, parallelism generation stalls, and the curve
// plateaus low (the "vicious cycle").

#include "bench_common.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Plots 14-16 — utilization vs time, 10x10 grid, Fibonacci",
               "sampled every 50 units; bars show % of PE capacity busy");

  int plot_no = 14;
  for (const char* wl : {"fib:18", "fib:15", "fib:9"}) {
    auto [cwn_cfg, gm_cfg] = paired_configs(Family::Grid, "grid:10x10", wl);
    cwn_cfg.machine.sample_interval = 50;
    gm_cfg.machine.sample_interval = 50;
    const auto results = run_ensemble({cwn_cfg, gm_cfg});

    std::printf("-- Plot %d: query %s --\n", plot_no++, wl);
    print_time_profile(results[0]);
    print_time_profile(results[1]);
  }
  std::printf("expected shape: CWN's fast rise vs GM's low flattened curve "
              "on the grid; both taper during the combine-dominated tail.\n");
  return 0;
}
