#pragma once
// Shared helpers for the paper-reproduction bench binaries: building the
// paper's sample-point configs, running CWN/GM pairs in parallel, and
// rendering paper-style tables and utilization-vs-time profiles.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "core/runner.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "exp/batch.hpp"
#include "stats/run_result.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace oracle::bench {

using core::ExperimentConfig;
using core::paper::Family;

inline void print_header(const std::string& title, const std::string& detail) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!detail.empty()) std::printf("%s\n", detail.c_str());
  std::printf("================================================================\n\n");
}

/// Run an ensemble of configs on the batch experiment engine: sharded
/// parallel workers, live jobs/s + ETA progress on stderr, results in
/// config order. Set ORACLE_BENCH_JSONL=path to also stream every run to a
/// JSONL store (fresh file per invocation; the bench tables need the full
/// result vector, so benches never resume). Throws on any failed run.
inline std::vector<stats::RunResult> run_ensemble(
    const std::vector<ExperimentConfig>& configs) {
  exp::BatchOptions opt;
  opt.exec.progress = true;
  if (const char* out = std::getenv("ORACLE_BENCH_JSONL")) opt.jsonl_path = out;
  auto outcome = core::run_batch(configs, opt);
  if (!outcome.report.ok()) {
    throw SimulationError("bench ensemble failed: " +
                          (outcome.report.errors.empty()
                               ? std::string("unknown error")
                               : outcome.report.errors.front()));
  }
  return std::move(outcome.results);
}

/// Build the CWN and GM configs for one sample point.
inline std::pair<ExperimentConfig, ExperimentConfig> paired_configs(
    Family family, const std::string& topology, const std::string& workload) {
  ExperimentConfig cwn = core::paper::base_config();
  cwn.topology = topology;
  cwn.strategy = core::paper::cwn_spec(family);
  cwn.workload = workload;
  ExperimentConfig gm = cwn;
  gm.strategy = core::paper::gm_spec(family);
  return {cwn, gm};
}

/// Speedup ratio CWN/GM, the statistic of the paper's Table 2.
inline double speedup_ratio(const stats::RunResult& cwn,
                            const stats::RunResult& gm) {
  return gm.speedup > 0 ? cwn.speedup / gm.speedup : 0.0;
}

/// Render a sampled utilization profile as a fixed-width ASCII bar row,
/// mirroring the paper's utilization-vs-time plots in the terminal.
inline std::string spark(double percent, int width = 40) {
  int filled = static_cast<int>(percent / 100.0 * width + 0.5);
  if (filled < 0) filled = 0;
  if (filled > width) filled = width;
  return std::string(static_cast<std::size_t>(filled), '#') +
         std::string(static_cast<std::size_t>(width - filled), '.');
}

/// Print a utilization-vs-time profile (the paper's Plots 11-16 style):
/// rows of "t | util% | bar" downsampled to ~`max_rows` rows.
inline void print_time_profile(const stats::RunResult& r,
                               std::size_t max_rows = 25) {
  const auto ts = r.utilization_series();
  std::printf("-- %s on %s, %s: completion %lld, avg util %.1f%%\n",
              r.strategy.c_str(), r.topology.c_str(), r.workload.c_str(),
              static_cast<long long>(r.completion_time),
              r.utilization_percent());
  if (ts.empty()) return;
  const std::size_t stride = std::max<std::size_t>(1, ts.size() / max_rows);
  for (std::size_t i = 0; i < ts.size(); i += stride) {
    std::printf("  t=%7lld  %5.1f%%  %s\n",
                static_cast<long long>(ts.time_at(i)), ts.value_at(i),
                spark(ts.value_at(i)).c_str());
  }
  std::printf("\n");
}

}  // namespace oracle::bench
