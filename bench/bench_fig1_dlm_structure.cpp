// Figure 1 of the paper: "A 10x10 Double Lattice Mesh with bus-span = 5".
// This bench prints the structural properties of the reconstructed DLM
// family next to the grids, verifying the topology-level facts the paper's
// argument rests on: DLM diameters of 4-5 versus 8-38 for the grids, and
// the much larger single-hop neighborhood of the bus design.

#include "bench_common.hpp"
#include "topo/factory.hpp"
#include "topo/graph_algos.hpp"

using namespace oracle;
using namespace oracle::bench;

int main() {
  print_header("Figure 1 — Double Lattice Mesh structure",
               "reconstructed wiring: two bus lattices per dimension "
               "(local segments + strided skips)");

  // One CWN fib(13) run per topology, executed as a single engine batch
  // (shared topology cache + parallel shards), so the structural table can
  // show the utilization consequence of each wiring next to its facts.
  std::vector<ExperimentConfig> configs;
  for (const auto& size : core::paper::size_points()) {
    for (const Family family : {Family::Grid, Family::Dlm}) {
      ExperimentConfig cfg = core::paper::base_config();
      cfg.topology = family == Family::Grid ? size.grid_spec : size.dlm_spec;
      cfg.strategy = core::paper::cwn_spec(family);
      cfg.workload = "fib:13";
      configs.push_back(cfg);
    }
  }
  const auto results = run_ensemble(configs);

  TextTable t({"topology", "PEs", "links", "min deg", "max deg", "diameter",
               "avg distance", "CWN fib(13) util %"});
  std::size_t row = 0;
  for (const auto& size : core::paper::size_points()) {
    for (const std::string& spec : {size.grid_spec, size.dlm_spec}) {
      const auto topo = topo::make_topology(spec);
      const topo::DistanceMatrix dm(*topo);
      std::size_t min_deg = SIZE_MAX;
      for (topo::NodeId n = 0; n < topo->num_nodes(); ++n)
        min_deg = std::min(min_deg, topo->neighbors(n).size());
      t.add_row({topo->name(), std::to_string(topo->num_nodes()),
                 std::to_string(topo->num_links()), std::to_string(min_deg),
                 std::to_string(topo->max_degree()),
                 std::to_string(dm.diameter()), fixed(dm.average_distance(), 2),
                 fixed(results[row++].utilization_percent(), 1)});
    }
    t.add_rule();
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("paper reference: DLM diameters 4-5; grid diameters 8..38.\n\n");

  // Bus membership detail for the Figure-1 instance.
  const auto dlm = topo::make_topology("dlm:5:10x10");
  std::printf("dlm:5:10x10 bus inventory: %zu buses, every node on 4 buses, "
              "5 taps per bus.\nFirst row's buses (node ids):\n",
              dlm->num_links());
  int shown = 0;
  for (const auto& link : dlm->links()) {
    bool in_row0 = true;
    for (const auto m : link.members)
      if (m >= 10) in_row0 = false;
    if (!in_row0) continue;
    std::string members;
    for (const auto m : link.members) members += strfmt(" %u", m);
    std::printf("  bus %u: {%s }\n", link.id, members.c_str());
    if (++shown >= 6) break;
  }
  return 0;
}
